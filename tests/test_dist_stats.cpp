// Property tests for the deterministic distribution statistics
// (sim/hwvar/dist_stats.h): bitwise permutation invariance (the property
// that makes spread tables and distribution objectives safe to cache,
// resume, and golden-snapshot at any worker count), closed-form spot
// checks for the quantiles / Welford mean-sd / KS / quantile-distance
// routines, and the degenerate-input conventions.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "sim/hwvar/dist_stats.h"
#include "sim/rng.h"

namespace bridge {
namespace {

/// Seeded sample sets with repeated values and mixed magnitudes — the
/// shapes replica runtimes actually take.
std::vector<double> randomSamples(std::uint64_t seed, std::size_t n) {
  SplitMix64 rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = rng.next();
    double v = 1e-6 * static_cast<double>(r % 1000000);
    if (r % 7 == 0 && !out.empty()) v = out[r % out.size()];  // exact ties
    out.push_back(v);
  }
  return out;
}

/// A deterministic permutation distinct from the identity and from sorted
/// order.
std::vector<double> permuted(std::vector<double> v, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng.next() % i]);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Permutation invariance: every routine is a pure function of the multiset.

TEST(DistStatsPropertyTest, SummaryIsBitwisePermutationInvariant) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::vector<double> base = randomSamples(seed, 37);
    const SampleSummary a = summarizeSamples(base);
    for (std::uint64_t p = 1; p <= 4; ++p) {
      const SampleSummary b = summarizeSamples(permuted(base, seed * 100 + p));
      // Bitwise, not approximate: the summaries feed golden snapshots.
      EXPECT_EQ(a.count, b.count);
      EXPECT_EQ(a.mean, b.mean);
      EXPECT_EQ(a.sd, b.sd);
      EXPECT_EQ(a.min, b.min);
      EXPECT_EQ(a.max, b.max);
      EXPECT_EQ(a.q25, b.q25);
      EXPECT_EQ(a.median, b.median);
      EXPECT_EQ(a.q75, b.q75);
      EXPECT_EQ(a.iqr, b.iqr);
    }
  }
}

TEST(DistStatsPropertyTest, DistancesAreBitwisePermutationInvariant) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::vector<double> a = randomSamples(seed, 23);
    const std::vector<double> b = randomSamples(seed + 1000, 31);
    const double ks = ksDistance(a, b);
    const double qd = quantileDistance(a, b);
    for (std::uint64_t p = 1; p <= 4; ++p) {
      const std::vector<double> ap = permuted(a, seed * 10 + p);
      const std::vector<double> bp = permuted(b, seed * 20 + p);
      EXPECT_EQ(ksDistance(ap, bp), ks);
      EXPECT_EQ(quantileDistance(ap, bp), qd);
    }
    // Replica arrival order across a sweep's worker pool is exactly a
    // permutation — order independence is the determinism guarantee.
    std::vector<double> sorted_a = a;
    std::sort(sorted_a.begin(), sorted_a.end(), std::greater<double>());
    EXPECT_EQ(ksDistance(sorted_a, b), ks);
  }
}

TEST(DistStatsPropertyTest, DistancesAreSymmetric) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::vector<double> a = randomSamples(seed, 19);
    const std::vector<double> b = randomSamples(seed + 50, 26);
    EXPECT_EQ(ksDistance(a, b), ksDistance(b, a));
    EXPECT_EQ(quantileDistance(a, b), quantileDistance(b, a));
  }
}

// ---------------------------------------------------------------------------
// Closed forms.

TEST(DistStatsTest, QuantilesMatchClosedForms) {
  // Type-7 on {1, 2, 3, 4}: h = 3q.
  const std::vector<double> s = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sortedQuantile(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sortedQuantile(s, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(sortedQuantile(s, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(sortedQuantile(s, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(sortedQuantile(s, 0.75), 3.25);

  // A singleton is every quantile.
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(sortedQuantile(one, 0.1), 42.0);
  EXPECT_DOUBLE_EQ(sortedQuantile(one, 0.9), 42.0);
}

TEST(DistStatsTest, SummaryMatchesClosedForms) {
  const SampleSummary s = summarizeSamples({2.0, 4.0, 4.0, 4.0, 5.0, 5.0,
                                            7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sum of squared deviations = 32, sample variance = 32/7.
  EXPECT_DOUBLE_EQ(s.sd, std::sqrt(32.0 / 7.0));
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_DOUBLE_EQ(s.q25, 4.0);
  EXPECT_DOUBLE_EQ(s.q75, 5.5);
  EXPECT_DOUBLE_EQ(s.iqr, 1.5);
}

TEST(DistStatsTest, SingletonAndConstantSamplesHaveZeroSpread) {
  const SampleSummary one = summarizeSamples({3.25});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 3.25);
  EXPECT_DOUBLE_EQ(one.sd, 0.0);
  EXPECT_DOUBLE_EQ(one.iqr, 0.0);

  const SampleSummary flat = summarizeSamples({2.0, 2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(flat.mean, 2.0);
  EXPECT_DOUBLE_EQ(flat.sd, 0.0);
  EXPECT_DOUBLE_EQ(flat.iqr, 0.0);
}

TEST(DistStatsTest, KsDistanceMatchesClosedForms) {
  // Identical distributions: exactly 0.
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ksDistance(a, a), 0.0);

  // Disjoint supports: exactly 1.
  EXPECT_DOUBLE_EQ(ksDistance({1.0, 2.0}, {10.0, 11.0}), 1.0);

  // Half-overlap: F_a jumps to 1 at 2 while F_b is still 0 until 3.
  EXPECT_DOUBLE_EQ(ksDistance({1.0, 2.0}, {3.0, 4.0}), 1.0);

  // {1,2,3,4} vs {3,4,5,6}: sup gap at x in [2,3) is |1/2 - 0| = 0.5.
  EXPECT_DOUBLE_EQ(ksDistance({1.0, 2.0, 3.0, 4.0}, {3.0, 4.0, 5.0, 6.0}),
                   0.5);

  // Exact ties across sides must not inflate the gap: same multiset split
  // differently is still identical.
  EXPECT_DOUBLE_EQ(ksDistance({1.0, 1.0, 2.0}, {1.0, 1.0, 2.0}), 0.0);

  // Different sample counts, same distribution shape.
  EXPECT_DOUBLE_EQ(ksDistance({1.0, 2.0}, {1.0, 1.0, 2.0, 2.0}), 0.0);
}

TEST(DistStatsTest, QuantileDistanceMatchesClosedForms) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantileDistance(a, a), 0.0);

  // x vs 2x: every decile pair is (q, 2q), so each term is
  // |q - 2q| / ((q + 2q)/2) = 2/3 exactly — scale-free by construction.
  std::vector<double> doubled = a;
  for (double& v : doubled) v *= 2.0;
  EXPECT_DOUBLE_EQ(quantileDistance(a, doubled), 2.0 / 3.0);

  // Scale invariance: scaling *both* sides leaves the distance unchanged.
  std::vector<double> a_scaled = a;
  std::vector<double> b_scaled = doubled;
  for (double& v : a_scaled) v *= 1e-6;
  for (double& v : b_scaled) v *= 1e-6;
  EXPECT_DOUBLE_EQ(quantileDistance(a_scaled, b_scaled), 2.0 / 3.0);
}

TEST(DistStatsTest, EmptyInputConventions) {
  const SampleSummary empty = summarizeSamples({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.sd, 0.0);

  // Both empty: no evidence of mismatch. One empty: maximal mismatch —
  // a collapsed replica set must never look like a perfect fit.
  EXPECT_DOUBLE_EQ(ksDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(ksDistance({1.0}, {}), 1.0);
  EXPECT_DOUBLE_EQ(ksDistance({}, {1.0}), 1.0);
  EXPECT_DOUBLE_EQ(quantileDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(quantileDistance({1.0}, {}), 2.0);
  EXPECT_DOUBLE_EQ(quantileDistance({}, {1.0}), 2.0);
}

TEST(DistStatsTest, SortedSamplesSortsAscending) {
  const std::vector<double> sorted = sortedSamples({3.0, 1.0, 2.0, 1.0});
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EXPECT_DOUBLE_EQ(sorted.front(), 1.0);
  EXPECT_DOUBLE_EQ(sorted.back(), 3.0);
}

}  // namespace
}  // namespace bridge
