#include "sim/calendar.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace bridge {
namespace {

TEST(BusyCalendar, FirstReservationStartsAtReady) {
  BusyCalendar cal;
  EXPECT_EQ(cal.reserve(100, 4), 100u);
  EXPECT_EQ(cal.horizon(), 104u);
}

TEST(BusyCalendar, BackToBackSerializes) {
  BusyCalendar cal;
  EXPECT_EQ(cal.reserve(0, 8), 0u);
  EXPECT_EQ(cal.reserve(0, 8), 8u);
  EXPECT_EQ(cal.reserve(0, 8), 16u);
}

TEST(BusyCalendar, EarlierRequestFitsInGapBeforeFutureReservation) {
  // The whole point of the calendar: a reservation made at a future cycle
  // must not block an earlier one that fits before it.
  BusyCalendar cal;
  cal.reserve(1000, 4);             // future charge from a skewed core
  EXPECT_EQ(cal.reserve(10, 4), 10u);  // earlier arrival slots right in
  EXPECT_EQ(cal.reserve(998, 4), 1004u);  // doesn't fit before 1000: queues
}

TEST(BusyCalendar, GapMustFitDuration) {
  BusyCalendar cal;
  cal.reserve(10, 4);   // [10,14)
  cal.reserve(20, 4);   // [20,24)
  // A 6-cycle job does not fit the [14,20) gap... it does (6 == 20-14).
  EXPECT_EQ(cal.reserve(14, 6), 14u);
  // Now the region [10,24) is solid; an 8-cycle job goes after.
  EXPECT_EQ(cal.reserve(10, 8), 24u);
}

TEST(BusyCalendar, BusyCyclesAccumulate) {
  BusyCalendar cal;
  cal.reserve(0, 3);
  cal.reserve(100, 5);
  EXPECT_EQ(cal.busyCycles(), 8u);
}

TEST(BusyCalendar, AdjacentIntervalsMerge) {
  BusyCalendar cal;
  cal.reserve(0, 4);
  cal.reserve(4, 4);
  cal.reserve(8, 4);
  EXPECT_LE(cal.trackedIntervals(), 1u);
}

TEST(BusyCalendar, WindowBoundsMemory) {
  BusyCalendar cal(16);
  Xorshift64Star rng(3);
  for (int i = 0; i < 10000; ++i) {
    cal.reserve(rng.nextBelow(1 << 20), 1 + rng.nextBelow(8));
  }
  EXPECT_LE(cal.trackedIntervals(), 16u);
}

TEST(BusyCalendar, ReservationsNeverOverlapWithinWindow) {
  // With a window large enough that nothing is evicted, every pair of
  // reservations must be disjoint.
  BusyCalendar cal(1024);
  Xorshift64Star rng(7);
  std::vector<std::pair<Cycle, Cycle>> placed;
  for (int i = 0; i < 500; ++i) {
    const Cycle ready = rng.nextBelow(10000);
    const Cycle dur = 1 + rng.nextBelow(10);
    const Cycle start = cal.reserve(ready, dur);
    EXPECT_GE(start, ready);
    placed.emplace_back(start, start + dur);
  }
  for (std::size_t i = 0; i < placed.size(); ++i) {
    for (std::size_t j = i + 1; j < placed.size(); ++j) {
      const bool disjoint = placed[i].second <= placed[j].first ||
                            placed[j].second <= placed[i].first;
      EXPECT_TRUE(disjoint) << i << "," << j;
    }
  }
}

TEST(BusyCalendar, PeekMatchesReserveAndDoesNotMutate) {
  BusyCalendar cal;
  cal.reserve(10, 4);
  cal.reserve(20, 4);
  const Cycle peeked = cal.peek(10, 4);
  EXPECT_EQ(cal.peek(10, 4), peeked);  // idempotent
  EXPECT_EQ(cal.reserve(10, 4), peeked);
}

}  // namespace
}  // namespace bridge
