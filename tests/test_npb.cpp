#include "workloads/npb.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>

#include "harness/experiment.h"
#include "harness/reference_data.h"

namespace bridge {
namespace {

std::map<OpClass, std::uint64_t> histogram(TraceSource& t) {
  std::map<OpClass, std::uint64_t> h;
  MicroOp op;
  while (t.next(&op)) ++h[op.cls];
  return h;
}

std::map<MpiKind, std::uint64_t> mpiHistogram(TraceSource& t) {
  std::map<MpiKind, std::uint64_t> h;
  MicroOp op;
  while (t.next(&op)) {
    if (op.cls == OpClass::kMpi) ++h[op.mpi.kind];
  }
  return h;
}

TEST(Npb, NamesAndEnumeration) {
  EXPECT_EQ(allNpbBenchmarks().size(), 4u);
  EXPECT_EQ(npbName(NpbBenchmark::kCG), "CG");
  EXPECT_EQ(npbName(NpbBenchmark::kEP), "EP");
  EXPECT_EQ(npbName(NpbBenchmark::kIS), "IS");
  EXPECT_EQ(npbName(NpbBenchmark::kMG), "MG");
}

TEST(Npb, BadRankArgumentsThrow) {
  EXPECT_THROW(makeNpbRank(NpbBenchmark::kCG, -1, 4), std::invalid_argument);
  EXPECT_THROW(makeNpbRank(NpbBenchmark::kCG, 4, 4), std::invalid_argument);
  EXPECT_THROW(makeNpbRank(NpbBenchmark::kCG, 0, 0), std::invalid_argument);
}

TEST(Npb, SingleRankHasNoMpiOps) {
  NpbConfig cfg;
  cfg.scale = 0.05;
  for (const NpbBenchmark b : allNpbBenchmarks()) {
    auto t = makeNpbRank(b, 0, 1, cfg);
    const auto h = mpiHistogram(*t);
    EXPECT_TRUE(h.empty()) << npbName(b);
  }
}

TEST(Npb, EpIsComputeBound) {
  NpbConfig cfg;
  cfg.scale = 0.05;
  auto t = makeNpbRank(NpbBenchmark::kEP, 0, 1, cfg);
  const auto h = histogram(*t);
  std::uint64_t fp = 0, mem = 0, total = 0;
  for (const auto& [cls, n] : h) {
    total += n;
    if (isFpOp(cls)) fp += n;
    if (isMemOp(cls)) mem += n;
  }
  EXPECT_GT(fp, total / 4);
  EXPECT_LT(mem, total / 20);  // almost no memory traffic
}

TEST(Npb, CgGathersDependOnIndexLoads) {
  NpbConfig cfg;
  cfg.scale = 0.02;
  auto t = makeNpbRank(NpbBenchmark::kCG, 0, 1, cfg);
  MicroOp op;
  std::uint64_t dependent_gathers = 0;
  while (t->next(&op)) {
    if (op.cls == OpClass::kLoad && op.src0 != kNoReg) ++dependent_gathers;
  }
  EXPECT_GT(dependent_gathers, 1000u);
}

TEST(Npb, IsUsesAlltoall) {
  NpbConfig cfg;
  cfg.scale = 0.05;
  auto t = makeNpbRank(NpbBenchmark::kIS, 0, 4, cfg);
  const auto h = mpiHistogram(*t);
  EXPECT_GT(h.at(MpiKind::kAlltoall), 0u);
  EXPECT_GT(h.at(MpiKind::kAllreduce), 0u);
}

TEST(Npb, MgUsesNeighborHalosAndAllreduce) {
  NpbConfig cfg;
  cfg.scale = 1.0;
  auto t = makeNpbRank(NpbBenchmark::kMG, 1, 4, cfg);
  const auto h = mpiHistogram(*t);
  EXPECT_GT(h.at(MpiKind::kSend), 0u);
  EXPECT_EQ(h.at(MpiKind::kSend), h.at(MpiKind::kRecv));
  EXPECT_GT(h.at(MpiKind::kAllreduce), 0u);
}

TEST(Npb, CgUsesAllreducePerIteration) {
  NpbConfig cfg;
  cfg.scale = 0.05;
  auto t = makeNpbRank(NpbBenchmark::kCG, 0, 2, cfg);
  const auto h = mpiHistogram(*t);
  EXPECT_GE(h.at(MpiKind::kAllreduce), 6u);  // >= one per solver iteration
}

TEST(Npb, WorkSplitsAcrossRanks) {
  NpbConfig cfg;
  cfg.scale = 0.1;
  auto count = [&](int nranks) {
    auto t = makeNpbRank(NpbBenchmark::kEP, 0, nranks, cfg);
    MicroOp op;
    std::uint64_t n = 0;
    while (t->next(&op)) ++n;
    return n;
  };
  const auto one = count(1);
  const auto four = count(4);
  EXPECT_NEAR(static_cast<double>(one) / static_cast<double>(four), 4.0,
              0.5);
}

TEST(Npb, RanksUseDisjointDataRegions) {
  NpbConfig cfg;
  cfg.scale = 0.02;
  auto addrRange = [&](int rank) {
    auto t = makeNpbRank(NpbBenchmark::kIS, rank, 4, cfg);
    MicroOp op;
    Addr lo = ~Addr{0}, hi = 0;
    while (t->next(&op)) {
      if (isMemOp(op.cls)) {
        lo = std::min(lo, op.addr);
        hi = std::max(hi, op.addr);
      }
    }
    return std::pair{lo, hi};
  };
  const auto [lo0, hi0] = addrRange(0);
  const auto [lo1, hi1] = addrRange(1);
  EXPECT_TRUE(hi0 < lo1 || hi1 < lo0);
}

TEST(Npb, MgTopGridKnobScalesWorkAndValidates) {
  auto ops = [](unsigned mg_top) {
    NpbConfig cfg;
    cfg.scale = 0.05;
    cfg.mg_top = mg_top;
    auto t = makeNpbRank(NpbBenchmark::kMG, 0, 1, cfg);
    MicroOp op;
    std::uint64_t n = 0;
    while (t->next(&op)) ++n;
    return n;
  };
  // The grid hierarchy shrinks cubically: 24^3+12^3+6^3 is ~1/8 of
  // 48^3+24^3+12^3+6^3 — the saving that makes per-candidate NPB tuning
  // probes affordable.
  const std::uint64_t full = ops(48);
  const std::uint64_t small = ops(24);
  EXPECT_LT(small, full / 6);
  EXPECT_GT(small, full / 12);
  // The default config is the 48^3 grid — existing results stay identical.
  EXPECT_EQ(ops(NpbConfig{}.mg_top), full);
  EXPECT_EQ(npbTuningConfig().mg_top, 24u);
  EXPECT_THROW(makeNpbRank(NpbBenchmark::kMG, 0, 1, NpbConfig{1.0, 1, 5}),
               std::invalid_argument);
}

// Multi-rank scaling invariants (paper Figs. 3-4): EP splits its samples
// across ranks and only synchronizes once, so its 4-rank speedup is
// near-linear; CG and MG pay allreduces/halos every iteration and scale
// sublinearly. The invariant must hold on both model families, and EP
// must scale strictly better than either memory-bound benchmark.
TEST(NpbScaling, EpNearLinearWhileCgAndMgSublinearAcrossFamilies) {
  NpbConfig cfg = npbTuningConfig();
  const PlatformId platforms[] = {PlatformId::kRocket1, PlatformId::kMilkVSim};
  for (const PlatformId p : platforms) {
    std::map<NpbBenchmark, double> speedup;
    for (const NpbBenchmark b :
         {NpbBenchmark::kCG, NpbBenchmark::kEP, NpbBenchmark::kMG}) {
      const double s1 = runNpb(p, b, 1, cfg).seconds;
      const double s4 = runNpb(p, b, 4, cfg).seconds;
      ASSERT_GT(s1, 0.0);
      ASSERT_GT(s4, 0.0);
      speedup[b] = s1 / s4;
      const NpbScalingExpectation& expect = npbScalingExpectation(npbName(b));
      EXPECT_GE(speedup[b], expect.min_speedup4)
          << npbName(b) << " on " << platformName(p);
      EXPECT_LE(speedup[b], expect.max_speedup4)
          << npbName(b) << " on " << platformName(p);
    }
    EXPECT_GT(speedup[NpbBenchmark::kEP], speedup[NpbBenchmark::kCG])
        << platformName(p);
    EXPECT_GT(speedup[NpbBenchmark::kEP], speedup[NpbBenchmark::kMG])
        << platformName(p);
  }
}

// Which core hosts which rank's trace must not matter materially: CG's
// rank traces are identical (the gather vector is the full shared x), so
// its cycle count is exactly permutation-invariant; EP and IS have
// rank-dependent traces whose placement perturbs shared L2/bus/DRAM
// arbitration order, so they are invariant only up to a tight tolerance.
// MG is excluded: its halo exchanges name physical neighbors, so a
// permutation changes the communication graph itself.
TEST(NpbScaling, FourRankCyclesAreRankPermutationInvariant) {
  NpbConfig cfg = npbTuningConfig();
  const std::array<int, 4> perm = {2, 0, 3, 1};
  const PlatformId platforms[] = {PlatformId::kRocket1, PlatformId::kMilkVSim};
  for (const PlatformId p : platforms) {
    for (const NpbBenchmark b :
         {NpbBenchmark::kCG, NpbBenchmark::kEP, NpbBenchmark::kIS}) {
      const RunResult identity = runMultiRank(p, 4, [&](int rank, int nranks) {
        return makeNpbRank(b, rank, nranks, cfg);
      });
      const RunResult permuted = runMultiRank(p, 4, [&](int rank, int nranks) {
        return makeNpbRank(b, perm[static_cast<std::size_t>(rank)], nranks,
                           cfg);
      });
      ASSERT_GT(identity.cycles, 0u);
      if (b == NpbBenchmark::kCG) {
        EXPECT_EQ(permuted.cycles, identity.cycles)
            << npbName(b) << " on " << platformName(p);
      } else {
        const double rel =
            std::abs(static_cast<double>(permuted.cycles) -
                     static_cast<double>(identity.cycles)) /
            static_cast<double>(identity.cycles);
        EXPECT_LT(rel, 0.01) << npbName(b) << " on " << platformName(p)
                             << ": " << identity.cycles << " vs "
                             << permuted.cycles;
      }
    }
  }
}

}  // namespace
}  // namespace bridge
