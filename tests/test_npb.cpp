#include "workloads/npb.h"

#include <gtest/gtest.h>

#include <map>

namespace bridge {
namespace {

std::map<OpClass, std::uint64_t> histogram(TraceSource& t) {
  std::map<OpClass, std::uint64_t> h;
  MicroOp op;
  while (t.next(&op)) ++h[op.cls];
  return h;
}

std::map<MpiKind, std::uint64_t> mpiHistogram(TraceSource& t) {
  std::map<MpiKind, std::uint64_t> h;
  MicroOp op;
  while (t.next(&op)) {
    if (op.cls == OpClass::kMpi) ++h[op.mpi.kind];
  }
  return h;
}

TEST(Npb, NamesAndEnumeration) {
  EXPECT_EQ(allNpbBenchmarks().size(), 4u);
  EXPECT_EQ(npbName(NpbBenchmark::kCG), "CG");
  EXPECT_EQ(npbName(NpbBenchmark::kEP), "EP");
  EXPECT_EQ(npbName(NpbBenchmark::kIS), "IS");
  EXPECT_EQ(npbName(NpbBenchmark::kMG), "MG");
}

TEST(Npb, BadRankArgumentsThrow) {
  EXPECT_THROW(makeNpbRank(NpbBenchmark::kCG, -1, 4), std::invalid_argument);
  EXPECT_THROW(makeNpbRank(NpbBenchmark::kCG, 4, 4), std::invalid_argument);
  EXPECT_THROW(makeNpbRank(NpbBenchmark::kCG, 0, 0), std::invalid_argument);
}

TEST(Npb, SingleRankHasNoMpiOps) {
  NpbConfig cfg;
  cfg.scale = 0.05;
  for (const NpbBenchmark b : allNpbBenchmarks()) {
    auto t = makeNpbRank(b, 0, 1, cfg);
    const auto h = mpiHistogram(*t);
    EXPECT_TRUE(h.empty()) << npbName(b);
  }
}

TEST(Npb, EpIsComputeBound) {
  NpbConfig cfg;
  cfg.scale = 0.05;
  auto t = makeNpbRank(NpbBenchmark::kEP, 0, 1, cfg);
  const auto h = histogram(*t);
  std::uint64_t fp = 0, mem = 0, total = 0;
  for (const auto& [cls, n] : h) {
    total += n;
    if (isFpOp(cls)) fp += n;
    if (isMemOp(cls)) mem += n;
  }
  EXPECT_GT(fp, total / 4);
  EXPECT_LT(mem, total / 20);  // almost no memory traffic
}

TEST(Npb, CgGathersDependOnIndexLoads) {
  NpbConfig cfg;
  cfg.scale = 0.02;
  auto t = makeNpbRank(NpbBenchmark::kCG, 0, 1, cfg);
  MicroOp op;
  std::uint64_t dependent_gathers = 0;
  while (t->next(&op)) {
    if (op.cls == OpClass::kLoad && op.src0 != kNoReg) ++dependent_gathers;
  }
  EXPECT_GT(dependent_gathers, 1000u);
}

TEST(Npb, IsUsesAlltoall) {
  NpbConfig cfg;
  cfg.scale = 0.05;
  auto t = makeNpbRank(NpbBenchmark::kIS, 0, 4, cfg);
  const auto h = mpiHistogram(*t);
  EXPECT_GT(h.at(MpiKind::kAlltoall), 0u);
  EXPECT_GT(h.at(MpiKind::kAllreduce), 0u);
}

TEST(Npb, MgUsesNeighborHalosAndAllreduce) {
  NpbConfig cfg;
  cfg.scale = 1.0;
  auto t = makeNpbRank(NpbBenchmark::kMG, 1, 4, cfg);
  const auto h = mpiHistogram(*t);
  EXPECT_GT(h.at(MpiKind::kSend), 0u);
  EXPECT_EQ(h.at(MpiKind::kSend), h.at(MpiKind::kRecv));
  EXPECT_GT(h.at(MpiKind::kAllreduce), 0u);
}

TEST(Npb, CgUsesAllreducePerIteration) {
  NpbConfig cfg;
  cfg.scale = 0.05;
  auto t = makeNpbRank(NpbBenchmark::kCG, 0, 2, cfg);
  const auto h = mpiHistogram(*t);
  EXPECT_GE(h.at(MpiKind::kAllreduce), 6u);  // >= one per solver iteration
}

TEST(Npb, WorkSplitsAcrossRanks) {
  NpbConfig cfg;
  cfg.scale = 0.1;
  auto count = [&](int nranks) {
    auto t = makeNpbRank(NpbBenchmark::kEP, 0, nranks, cfg);
    MicroOp op;
    std::uint64_t n = 0;
    while (t->next(&op)) ++n;
    return n;
  };
  const auto one = count(1);
  const auto four = count(4);
  EXPECT_NEAR(static_cast<double>(one) / static_cast<double>(four), 4.0,
              0.5);
}

TEST(Npb, RanksUseDisjointDataRegions) {
  NpbConfig cfg;
  cfg.scale = 0.02;
  auto addrRange = [&](int rank) {
    auto t = makeNpbRank(NpbBenchmark::kIS, rank, 4, cfg);
    MicroOp op;
    Addr lo = ~Addr{0}, hi = 0;
    while (t->next(&op)) {
      if (isMemOp(op.cls)) {
        lo = std::min(lo, op.addr);
        hi = std::max(hi, op.addr);
      }
    }
    return std::pair{lo, hi};
  };
  const auto [lo0, hi0] = addrRange(0);
  const auto [lo1, hi1] = addrRange(1);
  EXPECT_TRUE(hi0 < lo1 || hi1 < lo0);
}

}  // namespace
}  // namespace bridge
