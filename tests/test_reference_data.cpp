#include "harness/reference_data.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

TEST(ReferenceData, CoversAllThreeAppsBothPlatformsAllRankCounts) {
  int ume = 0, lj = 0, chain = 0;
  for (const PaperRuntime& r : paperRuntimes()) {
    if (r.workload == "ume") ++ume;
    if (r.workload == "lammps-lj") ++lj;
    if (r.workload == "lammps-chain") ++chain;
    EXPECT_TRUE(r.pair == "bananapi" || r.pair == "milkv");
    EXPECT_TRUE(r.ranks == 1 || r.ranks == 2 || r.ranks == 4);
    EXPECT_GT(r.hw_seconds, 0.0);
    EXPECT_GT(r.sim_seconds, 0.0);
  }
  EXPECT_EQ(ume, 6);
  EXPECT_EQ(lj, 6);
  EXPECT_EQ(chain, 6);
}

TEST(ReferenceData, SimulationAlwaysSlowerInPaper) {
  // Every paper runtime pair has the FireSim simulation slower than the
  // silicon (relative speedup < 1).
  for (const PaperRuntime& r : paperRuntimes()) {
    EXPECT_LT(r.relativeSpeedup(), 1.0)
        << r.workload << " " << r.pair << " " << r.ranks;
  }
}

TEST(ReferenceData, UmeBananaPiCloseMilkVFar) {
  // §5.3: Banana Pi sim "closely matching"; MILK-V "significantly
  // outperforms its corresponding FireSim simulation".
  for (const PaperRuntime& r : paperRuntimes()) {
    if (r.workload != "ume") continue;
    if (r.pair == "bananapi") {
      EXPECT_GT(r.relativeSpeedup(), 0.6);
    } else {
      EXPECT_LT(r.relativeSpeedup(), 0.45);
    }
  }
}

TEST(ReferenceData, ExpectationsHaveValidRanges) {
  for (const PaperExpectation& e : paperExpectations()) {
    EXPECT_LT(e.lo, e.hi) << e.id;
    EXPECT_FALSE(e.claim.empty());
  }
}

TEST(ReferenceData, PaperScalingIsMonotoneWithRanks) {
  // Within each (workload, pair), hardware runtimes shrink with ranks.
  for (const PaperRuntime& a : paperRuntimes()) {
    for (const PaperRuntime& b : paperRuntimes()) {
      if (a.workload == b.workload && a.pair == b.pair &&
          a.ranks < b.ranks) {
        EXPECT_GE(a.hw_seconds, b.hw_seconds)
            << a.workload << " " << a.pair;
        EXPECT_GE(a.sim_seconds, b.sim_seconds);
      }
    }
  }
}

}  // namespace
}  // namespace bridge
