#include "harness/experiment.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

TEST(Experiment, RelativeSpeedupDefinition) {
  // Paper §5: 1.2 means the simulation runs 20% faster than hardware.
  EXPECT_DOUBLE_EQ(relativeSpeedup(1.2, 1.0), 1.2);
  EXPECT_DOUBLE_EQ(relativeSpeedup(1.0, 2.0), 0.5);
  EXPECT_THROW(relativeSpeedup(1.0, 0.0), std::invalid_argument);
}

TEST(Experiment, RunMicrobenchProducesSaneResult) {
  const RunResult r =
      runMicrobench(PlatformId::kRocket1, "Cca", /*scale=*/0.05);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.retired, 0u);
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_LE(r.ipc, 1.01);  // single-issue Rocket
}

TEST(Experiment, DeterministicRepeatedRuns) {
  const RunResult a = runMicrobench(PlatformId::kMilkVSim, "ML2", 0.05);
  const RunResult b = runMicrobench(PlatformId::kMilkVSim, "ML2", 0.05);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.retired, b.retired);
}

TEST(Experiment, RunNpbMultiRank) {
  NpbConfig cfg;
  cfg.scale = 0.05;
  const RunResult r = runNpb(PlatformId::kRocket1, NpbBenchmark::kEP, 2, cfg);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.messages, 0u);  // the final allreduce
}

TEST(Experiment, NpbScalesWithRanks) {
  NpbConfig cfg;
  cfg.scale = 0.2;
  const RunResult one =
      runNpb(PlatformId::kBananaPiHw, NpbBenchmark::kEP, 1, cfg);
  const RunResult four =
      runNpb(PlatformId::kBananaPiHw, NpbBenchmark::kEP, 4, cfg);
  const double speedup = one.seconds / four.seconds;
  EXPECT_GT(speedup, 2.0);  // EP is embarrassingly parallel
  EXPECT_LE(speedup, 4.3);
}

TEST(Experiment, RunUmeAndLammps) {
  UmeConfig ucfg;
  ucfg.zones_per_dim = 8;
  const RunResult u = runUme(PlatformId::kBananaPiSim, 2, ucfg);
  EXPECT_GT(u.cycles, 0u);

  LammpsConfig lcfg;
  lcfg.atoms = 512;
  lcfg.timesteps = 2;
  const RunResult l =
      runLammps(PlatformId::kMilkVSim, LammpsBenchmark::kChain, 2, lcfg);
  EXPECT_GT(l.cycles, 0u);
}

TEST(Experiment, FasterClockReducesComputeSeconds) {
  // Pure compute at 3.2 GHz takes half the wall-clock of 1.6 GHz.
  const RunResult slow =
      runMicrobench(PlatformId::kBananaPiSim, "ED1", 0.1);
  const RunResult fast =
      runMicrobench(PlatformId::kFastBananaPiSim, "ED1", 0.1);
  EXPECT_NEAR(slow.seconds / fast.seconds, 2.0, 0.2);
}

}  // namespace
}  // namespace bridge
