#include "branch/composite.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

MicroOp branchOp(Addr pc, bool taken, Addr target) {
  MicroOp op;
  op.cls = OpClass::kBranch;
  op.pc = pc;
  op.taken = taken;
  op.addr = target;
  return op;
}

MicroOp callOp(Addr pc, Addr target) {
  MicroOp op;
  op.cls = OpClass::kCall;
  op.pc = pc;
  op.addr = target;
  return op;
}

MicroOp retOp(Addr pc, Addr target) {
  MicroOp op;
  op.cls = OpClass::kRet;
  op.pc = pc;
  op.addr = target;
  return op;
}

TEST(CompositeFrontEnd, BiasedTakenBranchConvergesToNoMispredicts) {
  auto fe = makeRocketFrontEnd();
  int late_mispredicts = 0;
  for (int i = 0; i < 200; ++i) {
    const FrontEndOutcome o =
        fe->predictAndTrain(branchOp(0x400, true, 0x800));
    if (i >= 20 && o.mispredict) ++late_mispredicts;
  }
  EXPECT_EQ(late_mispredicts, 0);
  EXPECT_EQ(fe->stats().branches, 200u);
}

TEST(CompositeFrontEnd, TakenBranchNeedsBtbTarget) {
  auto fe = makeRocketFrontEnd();
  // First correctly-predicted-taken execution still misses the BTB.
  FrontEndOutcome o = fe->predictAndTrain(branchOp(0x400, true, 0x800));
  // (First prediction is weakly-taken: direction right, target unknown.)
  EXPECT_TRUE(o.mispredict);
  EXPECT_TRUE(o.target_wrong);
  o = fe->predictAndTrain(branchOp(0x400, true, 0x800));
  EXPECT_FALSE(o.mispredict);
}

TEST(CompositeFrontEnd, NotTakenBranchNeverNeedsBtb) {
  auto fe = makeRocketFrontEnd();
  fe->predictAndTrain(branchOp(0x400, false, 0x800));
  fe->predictAndTrain(branchOp(0x400, false, 0x800));
  const FrontEndOutcome o =
      fe->predictAndTrain(branchOp(0x400, false, 0x800));
  EXPECT_FALSE(o.mispredict);
  EXPECT_EQ(fe->stats().target_wrong, 0u);
}

TEST(CompositeFrontEnd, CallRetPairPredictsViaRas) {
  auto fe = makeRocketFrontEnd();
  // Warm the BTB for the call target.
  fe->predictAndTrain(callOp(0x400, 0x1000));
  fe->predictAndTrain(retOp(0x1080, 0x404));
  const FrontEndOutcome c = fe->predictAndTrain(callOp(0x400, 0x1000));
  EXPECT_FALSE(c.mispredict);
  const FrontEndOutcome r = fe->predictAndTrain(retOp(0x1080, 0x404));
  EXPECT_FALSE(r.mispredict);
}

TEST(CompositeFrontEnd, MismatchedReturnMispredicts) {
  auto fe = makeRocketFrontEnd();
  fe->predictAndTrain(callOp(0x400, 0x1000));
  const FrontEndOutcome r = fe->predictAndTrain(retOp(0x1080, 0xDEAD));
  EXPECT_TRUE(r.mispredict);
  EXPECT_EQ(fe->stats().ras_wrong, 1u);
}

TEST(CompositeFrontEnd, DeepNestingBeyondRasDepthMispredicts) {
  auto fe = makeRocketFrontEnd(/*bht=*/512, /*btb=*/64, /*ras_depth=*/4);
  // 8 calls from distinct sites, then 8 returns: the first 4 returns match,
  // the rest pop clobbered entries.
  for (int i = 0; i < 8; ++i) {
    fe->predictAndTrain(callOp(0x400 + i * 0x10, 0x1000));
  }
  int wrong = 0;
  for (int i = 7; i >= 0; --i) {
    const FrontEndOutcome o =
        fe->predictAndTrain(retOp(0x1080, 0x400 + i * 0x10 + 4));
    if (o.mispredict) ++wrong;
  }
  EXPECT_EQ(wrong, 4);
}

TEST(CompositeFrontEnd, JumpCachesTargetAfterFirstUse) {
  auto fe = makeBoomFrontEnd();
  MicroOp j;
  j.cls = OpClass::kJump;
  j.pc = 0x500;
  j.addr = 0x2000;
  EXPECT_TRUE(fe->predictAndTrain(j).mispredict);
  EXPECT_FALSE(fe->predictAndTrain(j).mispredict);
  // Target change costs one redirect.
  j.addr = 0x3000;
  EXPECT_TRUE(fe->predictAndTrain(j).mispredict);
}

TEST(CompositeFrontEnd, StatsAccumulate) {
  auto fe = makeRocketFrontEnd();
  for (int i = 0; i < 10; ++i) {
    fe->predictAndTrain(branchOp(0x400, i % 2 == 0, 0x800));
  }
  EXPECT_EQ(fe->stats().branches, 10u);
  EXPECT_GT(fe->stats().mispredicts, 0u);
  EXPECT_GT(fe->stats().mispredictRate(), 0.0);
}

}  // namespace
}  // namespace bridge
