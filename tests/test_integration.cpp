// Cross-module integration tests: paper-shape checks at reduced scale.
// These assert the *qualitative* results the paper reports (who wins,
// roughly by how much), not absolute numbers — see EXPERIMENTS.md for the
// full-scale comparison.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/figures.h"

namespace bridge {
namespace {

double relFor(PlatformId sim, PlatformId hw, const char* kernel,
              double scale = 0.1) {
  const RunResult h = runMicrobench(hw, kernel, scale);
  const RunResult s = runMicrobench(sim, kernel, scale);
  return relativeSpeedup(h.seconds, s.seconds);
}

TEST(Integration, MemoryKernelsShowSimDeficitVsBananaPi) {
  // Paper Fig 1: MM / MM_st at roughly 0.3-0.4 relative performance.
  for (const char* kernel : {"MM", "MM_st"}) {
    const double rel =
        relFor(PlatformId::kBananaPiSim, PlatformId::kBananaPiHw, kernel);
    EXPECT_LT(rel, 0.7) << kernel;
    EXPECT_GT(rel, 0.1) << kernel;
  }
}

TEST(Integration, FastModelImprovesComputeKernels) {
  // Doubling the clock moves compute/control kernels toward (or past) 1.0.
  for (const char* kernel : {"ED1", "EI", "Cca", "DP1d"}) {
    const double base =
        relFor(PlatformId::kBananaPiSim, PlatformId::kBananaPiHw, kernel);
    const double fast = relFor(PlatformId::kFastBananaPiSim,
                               PlatformId::kBananaPiHw, kernel);
    EXPECT_GT(fast, base) << kernel;
  }
}

TEST(Integration, FastModelLeavesMemoryKernelsBehind) {
  // Paper Fig 1: doubling the clock helps compute kernels but NOT the
  // memory kernels (DRAM nanoseconds don't shrink). Our ns-faithful model
  // shows memory relative performance staying flat while compute roughly
  // doubles; the paper reports a further *drop* for memory, which we
  // attribute to FireSim host-token queueing not modeled here (see
  // EXPERIMENTS.md).
  const double base_mem =
      relFor(PlatformId::kBananaPiSim, PlatformId::kBananaPiHw, "MM");
  const double fast_mem =
      relFor(PlatformId::kFastBananaPiSim, PlatformId::kBananaPiHw, "MM");
  const double base_cmp =
      relFor(PlatformId::kBananaPiSim, PlatformId::kBananaPiHw, "ED1");
  const double fast_cmp =
      relFor(PlatformId::kFastBananaPiSim, PlatformId::kBananaPiHw, "ED1");
  EXPECT_LT(fast_mem, base_mem * 1.15);  // memory: no improvement
  EXPECT_GT(fast_cmp, base_cmp * 1.6);   // compute: ~2x improvement
}

TEST(Integration, LargeBoomClosestToMilkVOnCompute) {
  // Paper Fig 2 / §5.2.2: the Large BOOM best approximates MILK-V compute.
  const double small =
      relFor(PlatformId::kSmallBoom, PlatformId::kMilkVHw, "EI");
  const double large =
      relFor(PlatformId::kLargeBoom, PlatformId::kMilkVHw, "EI");
  EXPECT_GT(large, small);
  EXPECT_GT(large, 0.5);
}

TEST(Integration, BoomOrderingOnIlpKernels) {
  const double s = relFor(PlatformId::kSmallBoom, PlatformId::kMilkVHw, "EM5");
  const double m =
      relFor(PlatformId::kMediumBoom, PlatformId::kMilkVHw, "EM5");
  const double l = relFor(PlatformId::kLargeBoom, PlatformId::kMilkVHw, "EM5");
  EXPECT_LE(s, m + 0.1);
  EXPECT_LE(m, l + 0.1);
}

TEST(Integration, MilkVMemoryKernelsShowDeficit) {
  // Paper Fig 2: memory kernels at 28-43% of MILK-V hardware.
  const double rel =
      relFor(PlatformId::kMilkVSim, PlatformId::kMilkVHw, "MM");
  EXPECT_LT(rel, 0.7);
  EXPECT_GT(rel, 0.1);
}

TEST(Integration, EpNearParityOnMilkVSim) {
  // Paper §5.2.2: "EP demonstrated near performance parity".
  NpbConfig cfg;
  cfg.scale = 0.1;
  const RunResult hw = runNpb(PlatformId::kMilkVHw, NpbBenchmark::kEP, 1, cfg);
  const RunResult sim =
      runNpb(PlatformId::kMilkVSim, NpbBenchmark::kEP, 1, cfg);
  const double rel = relativeSpeedup(hw.seconds, sim.seconds);
  EXPECT_GT(rel, 0.5);
  EXPECT_LT(rel, 1.6);
}

TEST(Integration, UmeScalesWithRanksEverywhere) {
  // Paper §5.3: "we observe runtime scaling with MPI ranks" on all four
  // systems. Run at the paper's 32^3 size: the scaled-down meshes sit on
  // cache-capacity cliffs that real UME (25 MiB working set) never sees.
  UmeConfig cfg;
  for (const PlatformId p :
       {PlatformId::kBananaPiSim, PlatformId::kBananaPiHw,
        PlatformId::kMilkVSim, PlatformId::kMilkVHw}) {
    const double t1 = runUme(p, 1, cfg).seconds;
    const double t4 = runUme(p, 4, cfg).seconds;
    EXPECT_GT(t1 / t4, 1.5) << platformName(p);
  }
}

TEST(Integration, LammpsSimSlowerThanSilicon) {
  // Paper Figs 6/7: large gap (sim ~2.4-4x slower) on both platforms.
  LammpsConfig cfg;
  cfg.atoms = 2000;
  cfg.timesteps = 2;
  for (const auto& [sim, hw] :
       {std::pair{PlatformId::kBananaPiSim, PlatformId::kBananaPiHw},
        std::pair{PlatformId::kMilkVSim, PlatformId::kMilkVHw}}) {
    const double hw_s =
        runLammps(hw, LammpsBenchmark::kLennardJones, 1, cfg).seconds;
    const double sim_s =
        runLammps(sim, LammpsBenchmark::kLennardJones, 1, cfg).seconds;
    EXPECT_LT(relativeSpeedup(hw_s, sim_s), 0.9) << platformName(sim);
  }
}

TEST(Integration, Rocket1AndRocket2Similar) {
  // Paper §5.2.1: "no significant performance difference between the
  // Rocket1 and Rocket2 configurations" (single core).
  NpbConfig cfg;
  cfg.scale = 0.05;
  for (const NpbBenchmark b : {NpbBenchmark::kCG, NpbBenchmark::kEP}) {
    const double r1 = runNpb(PlatformId::kRocket1, b, 1, cfg).seconds;
    const double r2 = runNpb(PlatformId::kRocket2, b, 1, cfg).seconds;
    EXPECT_NEAR(r1 / r2, 1.0, 0.25) << npbName(b);
  }
}

}  // namespace
}  // namespace bridge
