#include "dram/controller.h"

#include <gtest/gtest.h>

#include "dram/timings.h"

namespace bridge {
namespace {

TEST(DramTimings, PresetsAreOrderedByBandwidth) {
  // DDR4-3200 > DDR3-2000 (64-bit) > LPDDR4-2666 (32-bit channel).
  EXPECT_GT(ddr4_3200().peakBandwidthGBs(),
            ddr3_2000_quadrank().peakBandwidthGBs());
  EXPECT_GT(ddr3_2000_quadrank().peakBandwidthGBs(),
            lpddr4_2666().peakBandwidthGBs());
}

TEST(DramController, RowHitFasterThanConflict) {
  DramController c(ddr3_2000_quadrank(), 1.0);
  EXPECT_LT(c.idleRowHitLatency(), c.idleRowConflictLatency());
}

TEST(DramController, StreamingGetsRowHits) {
  DramController c(ddr3_2000_quadrank(), 1.0);
  Cycle t = 0;
  for (int i = 0; i < 32; ++i) {
    t = c.read(static_cast<Addr>(i) * kLineBytes, t);
  }
  EXPECT_GT(c.stats().rowHitRate(), 0.9);
}

TEST(DramController, RandomTrafficGetsRowMisses) {
  DramController c(ddr3_2000_quadrank(), 1.0);
  Cycle t = 0;
  // Stride of 1 MiB: a new row every access.
  for (int i = 0; i < 64; ++i) {
    t = c.read(static_cast<Addr>(i) * (1 << 20), t);
  }
  EXPECT_LT(c.stats().rowHitRate(), 0.1);
}

TEST(DramController, SameBankConflictSerializes) {
  const DramTimings timings = ddr3_2000_quadrank();
  DramController c(timings, 1.0);
  const std::uint64_t bank_stride =
      std::uint64_t{timings.row_bytes};  // next bank
  const std::uint64_t row_stride =
      std::uint64_t{timings.row_bytes} * timings.totalBanks();

  // Two accesses to the same bank, different rows, issued together.
  const Cycle a = c.read(0, 0);
  const Cycle b = c.read(row_stride, 0);
  EXPECT_GT(b, a);

  // Different banks overlap better.
  DramController c2(timings, 1.0);
  const Cycle a2 = c2.read(0, 0);
  const Cycle b2 = c2.read(bank_stride, 0);
  EXPECT_LT(b2 - a2, b - a);
}

TEST(DramController, HigherCoreFrequencyMeansMoreCycles) {
  // The same device takes ~2x the core cycles at 2x the clock — the paper's
  // Fast Banana Pi memory imbalance.
  DramController slow(ddr3_2000_quadrank(), 1.6);
  DramController fast(ddr3_2000_quadrank(), 3.2);
  EXPECT_NEAR(static_cast<double>(fast.idleRowConflictLatency()),
              2.0 * static_cast<double>(slow.idleRowConflictLatency()),
              4.0);
}

TEST(DramController, DataBusBoundsStreamBandwidth) {
  const DramTimings timings = ddr3_2000_quadrank();
  DramController c(timings, 1.0);  // 1 GHz: 1 cycle = 1 ns
  Cycle t = 0;
  const int n = 1000;
  Cycle done = 0;
  for (int i = 0; i < n; ++i) {
    done = c.read(static_cast<Addr>(i) * kLineBytes, t);
    t += 1;  // back-to-back issue
  }
  // Steady-state: one line per t_burst_ns; allow startup slack.
  const double ns_per_line = static_cast<double>(done) / n;
  EXPECT_GE(ns_per_line, timings.t_burst_ns * 0.95);
  EXPECT_LE(ns_per_line, timings.t_burst_ns * 1.6);
}

TEST(DramController, WritesArePostedButOccupyBus) {
  DramController c(ddr3_2000_quadrank(), 1.0);
  Cycle t = 0;
  for (int i = 0; i < 64; ++i) {
    c.write(static_cast<Addr>(i) * kLineBytes, t);
  }
  EXPECT_EQ(c.stats().writes, 64u);
  // A read behind the write burst sees queueing delay.
  const Cycle idle_read = DramController(ddr3_2000_quadrank(), 1.0)
                              .read(0x100000, 0);
  const Cycle queued_read = c.read(0x100000, 0);
  EXPECT_GT(queued_read, idle_read);
}

TEST(DramController, ReadQueueBackpressures) {
  DramTimings timings = ddr3_2000_quadrank();
  timings.read_queue_depth = 2;
  DramController c(timings, 1.0);
  // Saturate: many same-cycle reads to one bank; completion times must
  // strictly increase (no infinite concurrency).
  Cycle prev = 0;
  const std::uint64_t row_stride =
      std::uint64_t{timings.row_bytes} * timings.totalBanks();
  for (int i = 0; i < 16; ++i) {
    const Cycle done = c.read(static_cast<Addr>(i) * row_stride, 0);
    EXPECT_GT(done, prev);
    prev = done;
  }
}

TEST(DramController, FixedLatencyPresetIsFlat) {
  DramController c(fixedLatency(100.0), 1.0);
  const Cycle a = c.read(0, 0);
  const Cycle b = c.read(1 << 20, 1000);
  EXPECT_EQ(a, 100u + 1u);  // + forced 1-cycle burst
  EXPECT_EQ(b, 1000u + 100u + 1u);
}

TEST(DramController, StatsClassifyRowOutcomes) {
  DramController c(ddr3_2000_quadrank(), 1.0);
  c.read(0, 0);               // first touch: row miss (closed)
  c.read(kLineBytes, 1000);   // same row: hit
  const DramTimings timings = ddr3_2000_quadrank();
  const std::uint64_t row_stride =
      std::uint64_t{timings.row_bytes} * timings.totalBanks();
  c.read(row_stride, 2000);   // same bank, other row: conflict
  EXPECT_EQ(c.stats().row_misses, 1u);
  EXPECT_EQ(c.stats().row_hits, 1u);
  EXPECT_EQ(c.stats().row_conflicts, 1u);
}

}  // namespace
}  // namespace bridge
