#include "cache/hierarchy.h"

#include <gtest/gtest.h>

#include "dram/timings.h"

namespace bridge {
namespace {

MemSysParams tinyParams() {
  MemSysParams p;
  p.l1i = {64, 8, 2, 1};
  p.l1d = {64, 8, 2, 4};
  p.l2 = {1024, 8, 14, 1, 2, 8};
  p.bus = {64, 1};
  p.has_llc = false;
  p.dram = fixedLatency(100.0);
  p.dram_channels = 1;
  p.freq_ghz = 1.0;
  return p;
}

TEST(Hierarchy, L1HitLatency) {
  StatRegistry stats;
  MemoryHierarchy mem(1, tinyParams(), &stats);
  mem.load(0, 0x400, 0x1000, 0);  // warm (fill lands well before t=10000)
  const MemAccess a = mem.load(0, 0x400, 0x1000, 10000);
  EXPECT_TRUE(a.l1_hit);
  EXPECT_EQ(a.complete, 10002u);
}

TEST(Hierarchy, HitUnderPendingFillWaitsForTheFill) {
  StatRegistry stats;
  MemoryHierarchy mem(1, tinyParams(), &stats);
  const MemAccess miss = mem.load(0, 0x400, 0x1000, 0);
  // A "hit" issued before the fill lands cannot beat the fill.
  const MemAccess early = mem.load(0, 0x400, 0x1000, 5);
  EXPECT_TRUE(early.l1_hit);
  EXPECT_GE(early.complete, miss.complete);
}

TEST(Hierarchy, MissLatencyOrdering) {
  StatRegistry stats;
  MemoryHierarchy mem(1, tinyParams(), &stats);
  // Cold: L1 miss -> L2 miss -> DRAM.
  const MemAccess cold = mem.load(0, 0x400, 0x1000, 0);
  EXPECT_FALSE(cold.l1_hit);
  EXPECT_FALSE(cold.l2_hit);
  EXPECT_GT(cold.complete, 100u);  // at least the DRAM latency

  // Evict from L1 only (different L1 set usage): touch many lines mapping
  // to the same L1 set but different L2 sets.
  for (int i = 1; i <= 16; ++i) {
    mem.load(0, 0x400, 0x1000 + static_cast<Addr>(i) * 64 * 64, 1000000);
  }
  const MemAccess l2hit = mem.load(0, 0x400, 0x1000, 2000000);
  EXPECT_FALSE(l2hit.l1_hit);
  EXPECT_TRUE(l2hit.l2_hit);
  EXPECT_LT(l2hit.complete - 2000000, cold.complete);
}

TEST(Hierarchy, StatsCountHitsAndMisses) {
  StatRegistry stats;
  MemoryHierarchy mem(1, tinyParams(), &stats);
  mem.load(0, 0x400, 0x1000, 0);
  mem.load(0, 0x400, 0x1000, 1000);
  mem.load(0, 0x400, 0x1040, 2000);
  EXPECT_EQ(stats.counterValue("mem.l1d.miss"), 2u);
  EXPECT_EQ(stats.counterValue("mem.l1d.hit"), 1u);
  EXPECT_EQ(stats.counterValue("mem.l2.miss"), 2u);
}

TEST(Hierarchy, IndependentMissesOverlapUpToMshrs) {
  StatRegistry stats;
  MemSysParams p = tinyParams();
  p.l1d.mshrs = 4;
  MemoryHierarchy mem(1, p, &stats);
  // Four independent misses issued back-to-back at t=0..3 overlap.
  Cycle last = 0;
  for (int i = 0; i < 4; ++i) {
    const MemAccess a =
        mem.load(0, 0x400, static_cast<Addr>(i) * (1 << 16), i);
    last = std::max(last, a.complete);
  }
  // Serial would be >= 4 * 100; overlapped (modulo the L1 refill port's
  // per-line occupancy) is far less.
  EXPECT_LT(last, 300u);
}

TEST(Hierarchy, MshrLimitSerializesExcessMisses) {
  StatRegistry stats;
  MemSysParams p = tinyParams();
  p.l1d.mshrs = 1;
  MemoryHierarchy mem1(1, p, &stats);
  Cycle last1 = 0;
  for (int i = 0; i < 4; ++i) {
    last1 = std::max(last1,
                     mem1.load(0, 0x400, static_cast<Addr>(i) * (1 << 16),
                               i).complete);
  }
  StatRegistry stats4;
  p.l1d.mshrs = 4;
  MemoryHierarchy mem4(1, p, &stats4);
  Cycle last4 = 0;
  for (int i = 0; i < 4; ++i) {
    last4 = std::max(last4,
                     mem4.load(0, 0x400, static_cast<Addr>(i) * (1 << 16),
                               i).complete);
  }
  EXPECT_GT(last1, last4 + 100);
}

TEST(Hierarchy, SameLineMissMergesViaPendingFill) {
  StatRegistry stats;
  MemoryHierarchy mem(1, tinyParams(), &stats);
  const MemAccess first = mem.load(0, 0x400, 0x1000, 0);
  // Second access to the same line before the fill arrives waits for it
  // (state-hit, timing waits on line-ready).
  const MemAccess second = mem.load(0, 0x404, 0x1008, 1);
  EXPECT_GE(second.complete, first.complete);
  EXPECT_LE(second.complete, first.complete + 10);
}

TEST(Hierarchy, DirtyL1VictimReachesL2) {
  StatRegistry stats;
  MemSysParams p = tinyParams();
  p.l1d = {1, 1, 2, 4};  // 1-line L1: every new line evicts
  MemoryHierarchy mem(1, p, &stats);
  mem.store(0, 0x400, 0x1000, 0);
  mem.load(0, 0x400, 0x2000, 1000);  // evicts dirty 0x1000 into L2
  // 0x1000 must now be an L2 hit.
  const MemAccess back = mem.load(0, 0x400, 0x1000, 2000);
  EXPECT_TRUE(back.l2_hit);
}

TEST(Hierarchy, LlcSliceAbsorbsL2Misses) {
  StatRegistry stats;
  MemSysParams p = tinyParams();
  p.has_llc = true;
  p.llc.mode = LlcMode::kSimplifiedSram;
  p.llc.sets = 1024;
  p.llc.ways = 16;
  p.llc.sram_latency = 8;
  MemoryHierarchy mem(1, p, &stats);
  mem.load(0, 0x400, 0x1000, 0);
  // Push the line out of L1 and L2... instead, use a second line that
  // misses L2 but hits LLC after a first touch evicted nothing: simply
  // re-request a line that was L2-filled then L2-evicted is complex; use
  // stats to confirm the LLC was consulted at all.
  EXPECT_EQ(stats.counterValue("mem.llc.miss"), 1u);
}

TEST(Hierarchy, PrefetcherFillsAheadOfStream) {
  StatRegistry stats;
  MemSysParams p = tinyParams();
  p.prefetch.enabled = true;
  p.prefetch.degree = 2;
  p.prefetch.min_confidence = 2;
  MemoryHierarchy mem(1, p, &stats);
  Cycle t = 0;
  // Stream through 64 lines; after lock-on, fills land in L2 early.
  for (int i = 0; i < 64; ++i) {
    mem.load(0, 0x400, 0x10000 + static_cast<Addr>(i) * 64, t);
    t += 200;
  }
  EXPECT_GT(stats.counterValue("mem.prefetches"), 10u);
  // Late-stream misses hit in L2 thanks to the prefetcher.
  EXPECT_GT(stats.counterValue("mem.l2.hit"), 10u);
}

TEST(Hierarchy, StreamFasterWithPrefetcherEnabled) {
  auto run = [](bool enable) {
    StatRegistry stats;
    MemSysParams p = tinyParams();
    p.prefetch.enabled = enable;
    p.prefetch.degree = 4;
    MemoryHierarchy mem(1, p, &stats);
    Cycle t = 0;
    Cycle done = 0;
    for (int i = 0; i < 256; ++i) {
      const MemAccess a =
          mem.load(0, 0x400, 0x10000 + static_cast<Addr>(i) * 64, t);
      done = std::max(done, a.complete);
      t = a.complete;  // dependent-ish stream
    }
    return done;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(Hierarchy, BulkCopyScalesWithBytes) {
  StatRegistry stats;
  MemoryHierarchy mem(1, tinyParams(), &stats);
  const Cycle small = mem.bulkCopy(0, 0x100000, 0x200000, 256, 0);
  StatRegistry stats2;
  MemoryHierarchy mem2(1, tinyParams(), &stats2);
  const Cycle large = mem2.bulkCopy(0, 0x100000, 0x200000, 64 * 1024, 0);
  EXPECT_GT(large, small);
  EXPECT_EQ(mem.bulkCopy(0, 0x100000, 0x200000, 0, 42), 42u);
}

TEST(Hierarchy, MultiCoreContendsOnSharedL2Bank) {
  StatRegistry stats;
  MemSysParams p = tinyParams();
  p.l2.banks = 1;
  p.l2.bank_busy = 8;  // exaggerate
  MemoryHierarchy mem(2, p, &stats);
  // Two cold misses from different cores at the same cycle serialize on
  // the single L2 bank (and the shared bus), so they cannot complete at
  // the same time.
  const MemAccess a = mem.load(0, 0x400, 0x300000, 200000);
  const MemAccess b = mem.load(1, 0x400, 0x400000, 200000);
  EXPECT_NE(a.complete, b.complete);
}

}  // namespace
}  // namespace bridge
