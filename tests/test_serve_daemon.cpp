// Daemon admission tests: handshake, policy refusal, in-flight dedup,
// shared-fault outcomes, drain, the engine's --serve remote mode, and the
// end-to-end acceptance demo (4 concurrent clients, overlapping NPB grids,
// one execution per unique fingerprint, bit-identical to a direct engine
// run, second daemon fully served from the shared sharded cache).
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "sweep/fingerprint.h"
#include "sweep/job.h"
#include "sweep/sweep.h"

namespace bridge::serve {
namespace {

namespace fs = std::filesystem;

/// Scratch tree per test: a socket path and a cache dir that vanish with
/// the fixture. Unix socket paths must stay short (sun_path is ~108 bytes),
/// so everything lives directly under the test temp dir.
class ServeDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("bridge-serve-") + info->name() + "-" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string socketPath(const char* tag = "d") const {
    return (dir_ / (std::string(tag) + ".sock")).string();
  }
  std::string cachePath(const char* tag = "cache") const {
    return (dir_ / tag).string();
  }

  DaemonOptions daemonOptions(const char* socket_tag = "d") const {
    DaemonOptions options;
    options.socket_path = socketPath(socket_tag);
    options.sweep.workers = 4;
    options.sweep.cache_dir = cachePath();
    return options;
  }

  fs::path dir_;
};

void expectSamePayload(const SweepResult& a, const SweepResult& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.result.cycles, b.result.cycles);
  EXPECT_EQ(a.result.retired, b.result.retired);
  // Bitwise double equality: serve results must be indistinguishable from
  // local ones, not merely close.
  EXPECT_EQ(
      std::memcmp(&a.result.seconds, &b.result.seconds, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.result.ipc, &b.result.ipc, sizeof(double)), 0);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.error, b.error);
}

TEST_F(ServeDaemonTest, HandshakeCarriesVersionPolicyAndWorkers) {
  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  ServeClient client(daemon.socketPath());
  EXPECT_EQ(client.hello().version, kProtocolVersion);
  EXPECT_EQ(client.hello().policy, daemon.policySignature());
  EXPECT_EQ(client.hello().cache_dir, cachePath());
  EXPECT_EQ(client.hello().workers, 4u);
  EXPECT_NO_THROW(client.requirePolicy(daemon.policySignature()));
  EXPECT_THROW(client.requirePolicy("retries=99,definitely=not"),
               std::runtime_error);
  client.ping();
}

TEST_F(ServeDaemonTest, SecondRequestIsServedFromTheCache) {
  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const std::vector<JobSpec> grid = {
      microbenchJob(PlatformId::kRocket1, "MM", 0.25, 1)};
  ServeClient client(daemon.socketPath());
  const std::vector<SweepResult> first = client.run(grid);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(first[0].ok());
  EXPECT_FALSE(first[0].from_cache);

  const std::vector<SweepResult> second = client.run(grid);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].from_cache);
  expectSamePayload(first[0], second[0]);

  const ServeStats stats = client.stats();
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.attached, 0u);
}

TEST_F(ServeDaemonTest, ConcurrentClientsAttachToOneExecution) {
  // A universal slow fault keeps the first admission in flight long enough
  // for the second client to arrive and attach instead of re-executing.
  DaemonOptions options = daemonOptions();
  options.sweep.faults = FaultPlan::fromSpec("slow=1.0,slow-ms=600");
  SweepDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const JobSpec job = microbenchJob(PlatformId::kRocket1, "MM", 0.25, 2);
  SweepResult a, b;
  std::thread first([&] {
    ServeClient client(daemon.socketPath());
    a = client.run({job}).at(0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread second([&] {
    ServeClient client(daemon.socketPath());
    b = client.run({job}).at(0);
  });
  first.join();
  second.join();

  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_FALSE(a.from_cache);
  EXPECT_FALSE(b.from_cache);  // attached, not cached: same live result
  expectSamePayload(a, b);

  const ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_EQ(stats.admitted, 1u);  // one unique fingerprint went to the engine
  EXPECT_EQ(stats.attached, 1u);  // the twin rode along
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.report.total, 1u);  // the tally counts executions, not fans
}

TEST_F(ServeDaemonTest, SharedFaultedJobReportsSameOutcomeToAllClients) {
  // Chaos variant of the dedup test: the shared execution fails hard, and
  // every attached client must see that same failure — nobody gets a
  // different answer, nobody triggers a second execution.
  DaemonOptions options = daemonOptions();
  options.sweep.faults =
      FaultPlan::fromSpec("match=poison,slow=1.0,slow-ms=600");
  options.sweep.failures.max_retries = 0;  // one attempt: deterministic error
  options.sweep.failures.quarantine = false;
  SweepDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  JobSpec job = microbenchJob(PlatformId::kRocket1, "MM", 0.25, 3);
  job.label = "poison " + job.label;
  SweepResult a, b;
  std::thread first([&] {
    ServeClient client(daemon.socketPath());
    a = client.run({job}).at(0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread second([&] {
    ServeClient client(daemon.socketPath());
    b = client.run({job}).at(0);
  });
  first.join();
  second.join();

  EXPECT_EQ(a.outcome, JobOutcome::kFailed);
  EXPECT_EQ(b.outcome, JobOutcome::kFailed);
  EXPECT_EQ(a.error, b.error);
  EXPECT_FALSE(a.error.empty());
  EXPECT_EQ(a.attempts, b.attempts);

  const ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.attached, 1u);
  EXPECT_EQ(stats.report.failed, 1u);  // one failure, however many watchers
}

TEST_F(ServeDaemonTest, DrainFinishesInFlightJobsBeforeAnswering) {
  DaemonOptions options = daemonOptions();
  options.sweep.faults = FaultPlan::fromSpec("slow=1.0,slow-ms=600");
  SweepDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  SweepResult in_flight;
  std::thread runner([&] {
    ServeClient client(daemon.socketPath());
    in_flight =
        client.run({microbenchJob(PlatformId::kRocket1, "MM", 0.25, 4)}).at(0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  ServeClient drainer(daemon.socketPath());
  const RunReport final_report = drainer.shutdownDaemon();
  // The drain response is written only after every in-flight job completed,
  // so the final report already accounts for the runner's job.
  EXPECT_EQ(final_report.total, 1u);
  EXPECT_EQ(final_report.ok, 1u);
  EXPECT_TRUE(daemon.stopping());

  runner.join();
  EXPECT_TRUE(in_flight.ok());  // the in-flight client got its real result

  daemon.join();
  EXPECT_FALSE(fs::exists(daemon.socketPath()));  // socket removed on exit
  EXPECT_THROW(ServeClient{daemon.socketPath()}, std::runtime_error);
}

TEST_F(ServeDaemonTest, RemoteEngineRefusesPolicyMismatch) {
  DaemonOptions options = daemonOptions();
  options.sweep.failures.max_retries = 5;  // daemon policy != client policy
  SweepDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  SweepOptions remote;
  remote.serve_socket = daemon.socketPath();
  remote.failures.max_retries = 0;
  SweepEngine engine(remote);
  ASSERT_TRUE(engine.remote());
  EXPECT_THROW(
      engine.runOne(microbenchJob(PlatformId::kRocket1, "MM", 0.25, 5)),
      std::runtime_error);
}

TEST_F(ServeDaemonTest, RemoteEngineMatchesLocalRunBitForBit) {
  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  std::vector<JobSpec> grid;
  grid.push_back(microbenchJob(PlatformId::kRocket1, "MM", 0.25, 6));
  grid.push_back(microbenchJob(PlatformId::kRocket1, "MIM", 0.25, 6));
  grid.push_back(microbenchJob(PlatformId::kLargeBoom, "MM", 0.25, 6));

  SweepOptions local_options;
  local_options.workers = 2;
  local_options.cache_dir = cachePath("local-cache");
  SweepEngine local(local_options);
  RunReport local_report;
  const std::vector<SweepResult> local_results =
      local.run(grid, &local_report);

  SweepOptions remote_options;
  remote_options.serve_socket = daemon.socketPath();
  SweepEngine remote(remote_options);
  RunReport remote_report;
  const std::vector<SweepResult> remote_results =
      remote.run(grid, &remote_report);

  ASSERT_EQ(remote_results.size(), local_results.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(remote_results[i].label, grid[i].label);
    expectSamePayload(remote_results[i], local_results[i]);
  }
  EXPECT_EQ(remote_report.total, local_report.total);
  EXPECT_EQ(remote_report.ok, local_report.ok);
}

TEST_F(ServeDaemonTest, OverlappingGridsEndToEndAcceptance) {
  // The PR's acceptance demo. Four clients race overlapping NPB grids at a
  // cold shared cache: the daemon must execute each unique cell exactly
  // once, answer every client bit-identically to a direct SweepEngine run,
  // and leave a sharded cache a *second* daemon can serve entirely from.
  constexpr int kClients = 4;
  const auto makeCell = [](int index) {
    switch (index) {
      case 0:
        return npbJob(PlatformId::kRocket1, NpbBenchmark::kCG, 1, 0.1, 1);
      case 1:
        return npbJob(PlatformId::kRocket1, NpbBenchmark::kCG, 2, 0.1, 1);
      case 2:
        return npbJob(PlatformId::kRocket1, NpbBenchmark::kMG, 1, 0.1, 1);
      default:
        return npbJob(PlatformId::kRocket2, NpbBenchmark::kCG, 1, 0.1, 1);
    }
  };
  std::vector<JobSpec> cells;
  for (int i = 0; i < 4; ++i) cells.push_back(makeCell(i));
  std::vector<std::string> fingerprints;
  for (const JobSpec& cell : cells) {
    fingerprints.push_back(jobFingerprint(cell));
  }

  // Ground truth: a direct local engine over the same cells.
  SweepOptions local_options;
  local_options.workers = 2;
  local_options.cache_dir = cachePath("local-cache");
  SweepEngine local(local_options);
  std::map<std::string, SweepResult> truth;
  for (const SweepResult& r : local.run(cells)) {
    truth.emplace(r.fingerprint, r);
  }

  std::vector<std::vector<SweepResult>> client_results(kClients);
  {
    SweepDaemon daemon(daemonOptions("first"));
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        // Each client wants all four cells, starting at a different one —
        // total overlap, distinct labels, simultaneous arrival.
        std::vector<JobSpec> grid;
        for (int i = 0; i < 4; ++i) {
          JobSpec cell = makeCell((c + i) % 4);
          cell.label += " [client " + std::to_string(c) + "]";
          grid.push_back(std::move(cell));
        }
        ServeClient client(daemon.socketPath());
        client.requirePolicy(daemon.policySignature());
        client_results[c] = client.run(grid);
      });
    }
    for (std::thread& t : clients) t.join();

    const ServeStats stats = daemon.stats();
    EXPECT_EQ(stats.jobs, 16u);  // 4 clients x 4 cells
    // The acceptance criterion: executed == unique fingerprints. Every
    // other submission attached to an in-flight twin or hit the cache.
    EXPECT_EQ(stats.executed, 4u);
    EXPECT_EQ(stats.admitted + stats.attached, 16u);
    EXPECT_EQ(stats.cache_hits, stats.admitted - stats.executed);
    EXPECT_EQ(stats.report.ok, stats.report.total);

    daemon.requestStop();
    daemon.join();
  }

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(client_results[c].size(), 4u) << "client " << c;
    for (const SweepResult& r : client_results[c]) {
      ASSERT_TRUE(truth.count(r.fingerprint))
          << "client " << c << " got unknown fingerprint " << r.fingerprint;
      expectSamePayload(r, truth.at(r.fingerprint));
    }
  }

  // A second daemon sharing the cache tree serves everything without a
  // single execution — the cache is the daemon's persistent memory.
  SweepDaemon second(daemonOptions("second"));
  std::string error;
  ASSERT_TRUE(second.start(&error)) << error;
  ServeClient client(second.socketPath());
  const std::vector<SweepResult> cached = client.run(cells);
  ASSERT_EQ(cached.size(), 4u);
  for (const SweepResult& r : cached) {
    EXPECT_TRUE(r.from_cache) << r.label;
    expectSamePayload(r, truth.at(r.fingerprint));
  }
  const ServeStats stats = second.stats();
  EXPECT_EQ(stats.executed, 0u);
  EXPECT_EQ(stats.cache_hits, 4u);
}

}  // namespace
}  // namespace bridge::serve
