#include "branch/btb.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

TEST(Btb, MissThenHitAfterInstall) {
  BranchTargetBuffer btb(64, 4);
  Addr target = 0;
  EXPECT_FALSE(btb.lookup(0x400, &target));
  btb.update(0x400, 0x1000);
  ASSERT_TRUE(btb.lookup(0x400, &target));
  EXPECT_EQ(target, 0x1000u);
}

TEST(Btb, UpdateRefreshesTarget) {
  BranchTargetBuffer btb(64, 4);
  btb.update(0x400, 0x1000);
  btb.update(0x400, 0x2000);
  Addr target = 0;
  ASSERT_TRUE(btb.lookup(0x400, &target));
  EXPECT_EQ(target, 0x2000u);
}

TEST(Btb, SetConflictEvictsLru) {
  BranchTargetBuffer btb(16, 4);  // 4 sets
  // Five PCs in the same set (stride = sets * 4 bytes = 16 bytes).
  const Addr pcs[] = {0x400, 0x440, 0x480, 0x4C0, 0x500};
  for (const Addr pc : pcs) btb.update(pc, pc + 0x100);
  // The least recently used (first) entry is gone; the rest survive.
  Addr t = 0;
  EXPECT_FALSE(btb.lookup(pcs[0], &t));
  for (int i = 1; i < 5; ++i) {
    EXPECT_TRUE(btb.lookup(pcs[i], &t)) << i;
  }
}

TEST(Btb, LookupTouchUpdatesRecency) {
  BranchTargetBuffer btb(16, 4);
  const Addr pcs[] = {0x400, 0x440, 0x480, 0x4C0};
  for (const Addr pc : pcs) btb.update(pc, pc + 0x100);
  // Touch the oldest so the second-oldest becomes the victim.
  Addr t = 0;
  ASSERT_TRUE(btb.lookup(pcs[0], &t));
  btb.update(0x500, 0x600);
  EXPECT_TRUE(btb.lookup(pcs[0], &t));
  EXPECT_FALSE(btb.lookup(pcs[1], &t));
}

TEST(Btb, NullTargetPointerAllowed) {
  BranchTargetBuffer btb(64, 4);
  btb.update(0x400, 0x1000);
  EXPECT_TRUE(btb.lookup(0x400, nullptr));
}

TEST(Btb, DistinctSetsDoNotInterfere) {
  BranchTargetBuffer btb(16, 4);
  for (Addr pc = 0x400; pc < 0x400 + 16 * 4; pc += 4) {
    btb.update(pc, pc + 0x100);
  }
  Addr t = 0;
  int hits = 0;
  for (Addr pc = 0x400; pc < 0x400 + 16 * 4; pc += 4) {
    if (btb.lookup(pc, &t)) ++hits;
  }
  EXPECT_EQ(hits, 16);  // exactly fills the 4 sets x 4 ways
}

}  // namespace
}  // namespace bridge
