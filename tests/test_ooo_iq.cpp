// Issue-queue capacity modeling (paper Table 5): entries are held from
// dispatch to issue, so long operand waits with a small queue stall the
// front end.
#include <gtest/gtest.h>

#include "core/ooo.h"
#include "dram/timings.h"

namespace bridge {
namespace {

MemSysParams mem() {
  MemSysParams p;
  p.l1i = {64, 8, 1, 1};
  p.l1d = {64, 8, 2, 8};
  p.l2 = {1024, 8, 14, 4, 2, 8};
  p.bus = {128, 1};
  p.dram = fixedLatency(100.0);
  p.dram_channels = 1;
  p.freq_ghz = 1.0;
  return p;
}

Cycle runMissFeeder(unsigned int_iq) {
  // Pairs of (cold-missing load, dependent ALU op): the dependent ops camp
  // in the integer issue queue for the full miss latency, so a small queue
  // throttles dispatch and caps memory-level parallelism.
  OooParams params = largeBoomParams();
  params.int_iq = int_iq;
  StatRegistry stats;
  MemoryHierarchy m(1, mem(), &stats);
  OooCore core(0, params, &m, &stats, "c");
  for (int i = 0; i < 1500; ++i) {
    MicroOp ld;
    ld.cls = OpClass::kLoad;
    ld.dst = intReg(5 + (i % 16));
    ld.pc = 0x400;
    ld.addr = 0x1000'0000 + static_cast<Addr>(i) * 4096;
    ld.mem_size = 8;
    core.consume(ld);
    MicroOp dep;
    dep.cls = OpClass::kIntAlu;
    dep.dst = intReg(21);
    dep.src0 = intReg(5 + (i % 16));  // waits for the miss in the int IQ
    dep.pc = 0x404;
    core.consume(dep);
  }
  return core.drain();
}

TEST(OooIssueQueues, TinyFpQueueCannotHideIndependentWork) {
  // With a 2-entry FP queue the dependent adds fill it instantly and even
  // independent integer work behind them stalls at dispatch; a large
  // queue lets the machine run ahead. Compare on a mix.
  auto run = [&](unsigned fp_iq) {
    OooParams params = largeBoomParams();
    params.fp_iq = fp_iq;
    StatRegistry stats;
    MemoryHierarchy m(1, mem(), &stats);
    OooCore core(0, params, &m, &stats, "c");
    for (int i = 0; i < 2000; ++i) {
      MicroOp div;
      div.cls = OpClass::kFpDiv;
      div.dst = fpReg(1);
      div.src0 = fpReg(1);
      div.pc = 0x400;
      core.consume(div);
      MicroOp dep;
      dep.cls = OpClass::kFpAdd;
      dep.dst = fpReg(2);
      dep.src0 = fpReg(1);
      dep.pc = 0x404;
      core.consume(dep);
      for (int k = 0; k < 8; ++k) {
        MicroOp alu;
        alu.cls = OpClass::kIntAlu;
        alu.dst = intReg(5 + k);
        alu.src0 = intReg(20);
        alu.pc = 0x408;
        core.consume(alu);
      }
    }
    return core.drain();
  };
  // The FP chain dominates either way (int work hides under it), so the
  // queue size must not change the total dramatically...
  const Cycle small = run(2);
  const Cycle large = run(24);
  EXPECT_GE(small, large);  // ...but can never be faster.
}

TEST(OooIssueQueues, QueueOccupancyStallsDispatchAndCapsMlp) {
  // With 2 integer-queue entries, at most ~2 miss-dependent ops can wait,
  // so dispatch (and with it the independent next loads) stalls and MLP
  // collapses; a 64-entry queue restores overlap.
  const Cycle small = runMissFeeder(2);
  const Cycle large = runMissFeeder(64);
  EXPECT_GT(small, static_cast<Cycle>(large * 1.5));
}

TEST(OooIssueQueues, PresetsExposeTable5Sizes) {
  const OooParams l = largeBoomParams();
  EXPECT_EQ(l.int_iq, 32u);
  EXPECT_EQ(l.mem_iq, 16u);
  EXPECT_EQ(l.fp_iq, 24u);
  const OooParams s = smallBoomParams();
  EXPECT_LT(s.int_iq, l.int_iq);
}

}  // namespace
}  // namespace bridge
