// Sampled-simulation suite (`ctest -L sampling`, DESIGN §5i): spec parsing
// and validation, the seeded window phase, SampledCore's measurement
// hygiene (per-window accumulator reset, skip exclusion, drain closing an
// open window), degenerate-exactness (window >= interval is bit-identical
// to full fidelity), fingerprint separation (a sampled job can never alias
// a full-fidelity one in the cache or the serve dedup table), engine-level
// rewrite semantics, bit-determinism across worker counts and repeated
// runs, the accuracy bounds the bench trajectory documents, and the
// remote-worker round trip (a sampled spec executes sampled on a worker
// whose own sampling knobs are off — and a full spec executes full on a
// worker whose environment says to sample).
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "sim/sampling/sampled_core.h"
#include "sim/sampling/sampling.h"
#include "sim/stats.h"
#include "sweep/fingerprint.h"
#include "sweep/job.h"
#include "sweep/sweep.h"

namespace bridge {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Spec parsing and validation.

TEST(SamplingSpecTest, ParsesOnOffAndKeyValueForms) {
  SamplingParams p;
  std::string error;

  ASSERT_TRUE(parseSamplingSpec("off", &p, &error)) << error;
  EXPECT_FALSE(p.enabled);
  ASSERT_TRUE(parseSamplingSpec("0", &p, &error)) << error;
  EXPECT_FALSE(p.enabled);

  ASSERT_TRUE(parseSamplingSpec("on", &p, &error)) << error;
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.interval_ops, SamplingParams{}.interval_ops);

  ASSERT_TRUE(parseSamplingSpec("interval=1000,measure=100,warmup=10,seed=7",
                                &p, &error))
      << error;
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.interval_ops, 1000u);
  EXPECT_EQ(p.measure_ops, 100u);
  EXPECT_EQ(p.warmup_ops, 10u);
  EXPECT_EQ(p.seed, 7u);

  // Keys are optional and unordered; unspecified ones keep defaults.
  ASSERT_TRUE(parseSamplingSpec("measure=500", &p, &error)) << error;
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.measure_ops, 500u);
  EXPECT_EQ(p.interval_ops, SamplingParams{}.interval_ops);
}

TEST(SamplingSpecTest, RejectsUnknownKeysAndMalformedNumbers) {
  SamplingParams p;
  std::string error;
  EXPECT_FALSE(parseSamplingSpec("cadence=100", &p, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parseSamplingSpec("interval=abc", &p, &error));
  EXPECT_FALSE(parseSamplingSpec("interval=", &p, &error));
  EXPECT_FALSE(parseSamplingSpec("", &p, &error));
}

TEST(SamplingSpecTest, SpecStringRoundTrips) {
  SamplingParams p;
  p.enabled = true;
  p.interval_ops = 12345;
  p.measure_ops = 678;
  p.warmup_ops = 90;
  p.seed = 4;
  SamplingParams back;
  ASSERT_TRUE(parseSamplingSpec(p.specString(), &back, nullptr));
  EXPECT_EQ(back, p);

  SamplingParams off;
  EXPECT_EQ(off.specString(), "off");
  ASSERT_TRUE(parseSamplingSpec(off.specString(), &back, nullptr));
  EXPECT_EQ(back, off);
}

TEST(SamplingSpecTest, ValidateCatchesNonsense) {
  SamplingParams p;
  p.enabled = true;
  p.interval_ops = 0;
  std::string why;
  EXPECT_FALSE(p.validate(&why));
  EXPECT_FALSE(why.empty());

  p = SamplingParams{};
  p.enabled = true;
  p.measure_ops = 0;
  EXPECT_FALSE(p.validate(nullptr));

  // Disabled params are always valid, whatever the numbers say.
  p.enabled = false;
  EXPECT_TRUE(p.validate(nullptr));
}

TEST(SamplingSpecTest, EnvKnobDegradesToFullFidelityOnTypos) {
  ::setenv("BRIDGE_SAMPLING", "interval=2000,measure=100", 1);
  SamplingParams p = SamplingParams::fromEnv();
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.interval_ops, 2000u);

  // A typo in the environment must never crash a sweep: warn + disable.
  ::setenv("BRIDGE_SAMPLING", "intervl=2000", 1);
  p = SamplingParams::fromEnv();
  EXPECT_FALSE(p.enabled);

  ::unsetenv("BRIDGE_SAMPLING");
  p = SamplingParams::fromEnv();
  EXPECT_FALSE(p.enabled);
}

TEST(SamplingSpecTest, WindowOffsetIsSeededAndDeterministic) {
  SamplingParams p;
  p.enabled = true;
  p.interval_ops = 10000;
  p.warmup_ops = 100;
  p.measure_ops = 400;
  const std::uint64_t slack = p.interval_ops - p.detailedOps();

  // Interval 0 measures first: the CPI estimate must exist before the
  // first extrapolation.
  EXPECT_EQ(samplingWindowOffset(p, 0), 0u);

  bool moved = false;
  for (std::uint64_t i = 1; i < 64; ++i) {
    const std::uint64_t off = samplingWindowOffset(p, i);
    EXPECT_LE(off, slack);
    EXPECT_EQ(off, samplingWindowOffset(p, i));  // deterministic
    if (off != 0) moved = true;
  }
  // The phase actually varies (a constant offset would alias with any
  // periodic program structure).
  EXPECT_TRUE(moved);

  SamplingParams other = p;
  other.seed = p.seed + 1;
  bool differs = false;
  for (std::uint64_t i = 1; i < 64 && !differs; ++i) {
    differs = samplingWindowOffset(p, i) != samplingWindowOffset(other, i);
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// SampledCore unit tests against a deterministic fake inner core.

/// Fixed cost-per-op core: consume() charges `cost` cycles, warmOp()
/// charges nothing. Makes every extrapolation arithmetically checkable.
class FakeCore final : public CoreModel {
 public:
  explicit FakeCore(Cycle cost) : cost_(cost) {}

  void consume(const MicroOp&) override {
    now_ += cost_;
    ++retired_;
    ++detailed_ops;
  }
  void warmOp(const MicroOp&) override { ++warmed_ops; }
  Cycle now() const override { return now_; }
  Cycle frontier() const override { return now_; }
  Cycle drain() override { return now_; }
  void skipTo(Cycle c) override {
    if (c > now_) now_ = c;
  }
  std::uint64_t retired() const override { return retired_; }

  std::uint64_t detailed_ops = 0;
  std::uint64_t warmed_ops = 0;

 private:
  Cycle cost_;
  Cycle now_ = 0;
  std::uint64_t retired_ = 0;
};

SamplingParams smallParams() {
  SamplingParams p;
  p.enabled = true;
  p.interval_ops = 100;
  p.warmup_ops = 10;
  p.measure_ops = 20;
  p.seed = 3;
  return p;
}

MicroOp aluOp() {
  MicroOp op;
  op.cls = OpClass::kIntAlu;
  op.pc = 0x1000;
  return op;
}

TEST(SampledCoreTest, WindowAccumulatorsResetAtEveryIntervalBoundary) {
  // The satellite regression: a measurement accumulator that survives the
  // interval boundary folds the previous window's cycles into the next
  // one, so window k would report ~k times the true cycle count and every
  // extrapolation after it would be skewed. With a constant-cost inner
  // core every window must report exactly measure_ops ops and
  // measure_ops * cost cycles, from the first interval to the last.
  constexpr Cycle kCost = 3;
  const SamplingParams p = smallParams();
  StatRegistry stats;
  SampledCore core(std::make_unique<FakeCore>(kCost), p, &stats, "core0");

  constexpr std::uint64_t kIntervals = 25;
  for (std::uint64_t i = 0; i < kIntervals * p.interval_ops; ++i) {
    core.consume(aluOp());
  }

  ASSERT_EQ(core.measurements().size(), kIntervals);
  for (const SampledCore::Measurement& m : core.measurements()) {
    SCOPED_TRACE("interval " + std::to_string(m.interval));
    EXPECT_EQ(m.ops, p.measure_ops);
    EXPECT_EQ(m.cycles, p.measure_ops * kCost);
    EXPECT_LE(m.window_offset, p.interval_ops - p.detailedOps());
  }
  EXPECT_EQ(core.measurements()[0].window_offset, 0u);
  EXPECT_DOUBLE_EQ(core.estimatedCpi(), static_cast<double>(kCost));

  // The sampling counters agree with the measurement log.
  EXPECT_EQ(stats.counterValue("core0.sampling.intervals"), kIntervals);
  EXPECT_EQ(stats.counterValue("core0.sampling.measured_ops"),
            kIntervals * p.measure_ops);
  EXPECT_EQ(stats.counterValue("core0.sampling.measured_cycles"),
            kIntervals * p.measure_ops * kCost);
}

TEST(SampledCoreTest, ExtrapolatesFastForwardAtMeasuredCpi) {
  constexpr Cycle kCost = 2;
  const SamplingParams p = smallParams();
  StatRegistry stats;
  SampledCore core(std::make_unique<FakeCore>(kCost), p, &stats, "core0");
  FakeCore& inner = static_cast<FakeCore&>(core.inner());

  constexpr std::uint64_t kOps = 40 * 100;  // 40 intervals
  for (std::uint64_t i = 0; i < kOps; ++i) core.consume(aluOp());
  core.drain();

  // Every op retires exactly once, split across the two streams.
  EXPECT_EQ(core.retired(), kOps);
  EXPECT_EQ(inner.detailed_ops + inner.warmed_ops, kOps);
  EXPECT_EQ(inner.detailed_ops,
            stats.counterValue("core0.sampling.intervals") * p.detailedOps());

  // Constant CPI: the extrapolated clock lands within one interval's worth
  // of rounding of the exact clock (the final partial fast-forward segment
  // flushes on drain, so there is no systematic bias).
  const double exact = static_cast<double>(kOps) * kCost;
  const double got = static_cast<double>(core.now());
  EXPECT_NEAR(got, exact, static_cast<double>(p.interval_ops));
  EXPECT_GT(stats.counterValue("core0.sampling.skipped_cycles"), 0u);
}

TEST(SampledCoreTest, SkipToInsideMeasureWindowIsNotDoubleBilled) {
  // An MPI wait resuming the rank mid-window jumps the clock; those cycles
  // are charged directly and must not inflate the window's CPI (which
  // would re-bill them on every fast-forwarded segment).
  constexpr Cycle kCost = 1;
  const SamplingParams p = smallParams();
  StatRegistry stats;
  SampledCore core(std::make_unique<FakeCore>(kCost), p, &stats, "core0");

  // Interval 0 window is at offset 0: warmup ops 0..9, measured 10..29.
  for (int i = 0; i < 15; ++i) core.consume(aluOp());
  core.skipTo(core.now() + 500);  // the wait
  for (int i = 15; i < 30; ++i) core.consume(aluOp());

  ASSERT_EQ(core.measurements().size(), 1u);
  EXPECT_EQ(core.measurements()[0].ops, p.measure_ops);
  EXPECT_EQ(core.measurements()[0].cycles, p.measure_ops * kCost);
  EXPECT_DOUBLE_EQ(core.estimatedCpi(), 1.0);
}

TEST(SampledCoreTest, DrainClosesAnOpenWindowBeforeDraining) {
  constexpr Cycle kCost = 1;
  const SamplingParams p = smallParams();
  StatRegistry stats;
  SampledCore core(std::make_unique<FakeCore>(kCost), p, &stats, "core0");

  // Stop mid-window: 10 warmup + 5 measured ops, then end of trace.
  for (int i = 0; i < 15; ++i) core.consume(aluOp());
  core.drain();

  ASSERT_EQ(core.measurements().size(), 1u);
  EXPECT_EQ(core.measurements()[0].ops, 5u);
  EXPECT_EQ(core.measurements()[0].cycles, 5u);
}

TEST(SampledCoreTest, DegenerateWindowIsAPurePassthrough) {
  SamplingParams p;
  p.enabled = true;
  p.interval_ops = 100;
  p.warmup_ops = 50;
  p.measure_ops = 100;  // detailedOps() = 150 >= interval_ops
  ASSERT_TRUE(p.exact());

  StatRegistry stats;
  SampledCore core(std::make_unique<FakeCore>(2), p, &stats, "core0");
  FakeCore& inner = static_cast<FakeCore&>(core.inner());

  for (int i = 0; i < 1000; ++i) core.consume(aluOp());
  EXPECT_EQ(core.now(), 2000u);
  EXPECT_EQ(core.retired(), 1000u);
  EXPECT_EQ(inner.warmed_ops, 0u);
  EXPECT_TRUE(core.measurements().empty());
  EXPECT_EQ(stats.counterValue("core0.sampling.ff_ops"), 0u);
}

// ---------------------------------------------------------------------------
// Fingerprints, engine rewrite, cache separation.

SamplingParams sweepParams() {
  // Small enough to genuinely sample the reduced-scale test workloads
  // (which retire hundreds of thousands of ops, not billions).
  SamplingParams p;
  p.enabled = true;
  p.interval_ops = 5000;
  p.warmup_ops = 200;
  p.measure_ops = 1000;
  p.seed = 1;
  return p;
}

TEST(SamplingFingerprintTest, SampledAndFullSpecsNeverShareAFingerprint) {
  const JobSpec full = microbenchJob(PlatformId::kRocket1, "MM", 0.25);
  JobSpec sampled = full;
  applySamplingOverrides(&sampled.overrides, sweepParams());

  EXPECT_FALSE(hasSamplingOverrides(full.overrides));
  EXPECT_TRUE(hasSamplingOverrides(sampled.overrides));
  EXPECT_NE(jobFingerprint(full), jobFingerprint(sampled));

  // Different sampling parameters are different cache entries too.
  JobSpec other = full;
  SamplingParams q = sweepParams();
  q.seed = 2;
  applySamplingOverrides(&other.overrides, q);
  EXPECT_NE(jobFingerprint(sampled), jobFingerprint(other));
}

TEST(SamplingFingerprintTest, FullFidelityFingerprintsAreLegacyIdentical) {
  // Sampling is folded into describeSocConfig() only when enabled, so a
  // full-fidelity config's canonical description — and with it every
  // existing cache entry and golden snapshot — is byte-identical to
  // pre-sampling builds.
  const JobSpec full = microbenchJob(PlatformId::kRocket1, "MM", 0.25);
  const std::string desc = describeSocConfig(resolveSocConfig(full));
  EXPECT_EQ(desc.find("sampling"), std::string::npos);
}

TEST(SamplingEngineTest, EffectiveSpecRewritesOnceAndRespectsPinnedSpecs) {
  SweepOptions options;
  options.use_cache = false;
  options.sampling = sweepParams();
  SweepEngine engine(options);

  const JobSpec base = microbenchJob(PlatformId::kRocket1, "MM", 0.25);
  const JobSpec rewritten = engine.effectiveSpec(base);
  EXPECT_TRUE(hasSamplingOverrides(rewritten.overrides));
  EXPECT_NE(jobFingerprint(base), jobFingerprint(rewritten));

  // A spec that already pins its fidelity passes through untouched — the
  // engine must not stack its own knobs on top.
  JobSpec pinned = base;
  SamplingParams mine = sweepParams();
  mine.interval_ops = 7777;
  applySamplingOverrides(&pinned.overrides, mine);
  const JobSpec kept = engine.effectiveSpec(pinned);
  EXPECT_EQ(jobFingerprint(kept), jobFingerprint(pinned));

  // A disabled engine is the identity.
  SweepOptions off;
  off.use_cache = false;
  EXPECT_EQ(jobFingerprint(SweepEngine(off).effectiveSpec(base)),
            jobFingerprint(base));
}

TEST(SamplingEngineTest, SampledResultsNeverAliasFullOnesInTheCache) {
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      ("bridge-sampling-cache-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  const JobSpec job = microbenchJob(PlatformId::kRocket1, "MM", 0.25);

  SweepOptions sampled_opts;
  sampled_opts.cache_dir = dir.string();
  sampled_opts.sampling = sweepParams();
  const SweepResult sampled = SweepEngine(sampled_opts).runOne(job);
  ASSERT_TRUE(sampled.ok());
  EXPECT_FALSE(sampled.from_cache);

  // Same base spec at full fidelity, same cache directory: a fresh
  // execution, never the sampled entry.
  SweepOptions full_opts;
  full_opts.cache_dir = dir.string();
  const SweepResult full = SweepEngine(full_opts).runOne(job);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full.from_cache);
  EXPECT_NE(full.fingerprint, sampled.fingerprint);

  // Each mode hits its own entry on re-run.
  EXPECT_TRUE(SweepEngine(sampled_opts).runOne(job).from_cache);
  EXPECT_TRUE(SweepEngine(full_opts).runOne(job).from_cache);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Determinism and accuracy.

std::vector<JobSpec> samplingGrid() {
  std::vector<JobSpec> jobs;
  for (const char* kernel : {"MM", "STL2", "ED1", "MIM"}) {
    jobs.push_back(microbenchJob(PlatformId::kRocket1, kernel, 0.25));
  }
  jobs.push_back(npbJob(PlatformId::kBananaPiSim, NpbBenchmark::kCG,
                        /*ranks=*/2, /*scale=*/0.1));
  jobs.push_back(npbJob(PlatformId::kMilkVSim, NpbBenchmark::kEP,
                        /*ranks=*/2, /*scale=*/0.1));
  return jobs;
}

TEST(SamplingDeterminismTest, WorkerCountCannotMoveASampledCycle) {
  const std::vector<JobSpec> jobs = samplingGrid();

  SweepOptions serial;
  serial.workers = 1;
  serial.use_cache = false;
  serial.sampling = sweepParams();
  SweepOptions parallel = serial;
  parallel.workers = 8;

  const auto a = SweepEngine(serial).run(jobs);
  const auto b = SweepEngine(parallel).run(jobs);
  const auto c = SweepEngine(parallel).run(jobs);  // repeated run

  ASSERT_EQ(a.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    EXPECT_TRUE(a[i].ok());
    EXPECT_EQ(a[i].fingerprint, b[i].fingerprint);
    EXPECT_EQ(a[i].result.cycles, b[i].result.cycles);
    EXPECT_EQ(a[i].result.retired, b[i].result.retired);
    EXPECT_EQ(a[i].result.seconds, b[i].result.seconds);
    EXPECT_EQ(a[i].result.ipc, b[i].result.ipc);
    EXPECT_EQ(a[i].stats, b[i].stats);
    EXPECT_EQ(b[i].result.cycles, c[i].result.cycles);
    EXPECT_EQ(b[i].stats, c[i].stats);
  }
}

TEST(SamplingDeterminismTest, DegenerateParamsReduceToExactFullSimulation) {
  // detailedOps() >= interval_ops: every op runs detailed, so the sampled
  // run is cycle-for-cycle the full run — only the fingerprint moves.
  SamplingParams degenerate;
  degenerate.enabled = true;
  degenerate.interval_ops = 1000;
  degenerate.warmup_ops = 200;
  degenerate.measure_ops = 900;
  ASSERT_TRUE(degenerate.exact());

  SweepOptions full_opts;
  full_opts.use_cache = false;
  SweepOptions exact_opts;
  exact_opts.use_cache = false;
  exact_opts.sampling = degenerate;

  const std::vector<JobSpec> jobs = samplingGrid();
  const auto full = SweepEngine(full_opts).run(jobs);
  const auto exact = SweepEngine(exact_opts).run(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    EXPECT_TRUE(exact[i].ok());
    EXPECT_NE(exact[i].fingerprint, full[i].fingerprint);
    EXPECT_EQ(exact[i].result.cycles, full[i].result.cycles);
    EXPECT_EQ(exact[i].result.retired, full[i].result.retired);
    EXPECT_EQ(exact[i].result.seconds, full[i].result.seconds);
    EXPECT_EQ(exact[i].result.ipc, full[i].result.ipc);
  }
}

double relativeError(Cycle sampled, Cycle full) {
  return std::abs(static_cast<double>(sampled) - static_cast<double>(full)) /
         static_cast<double>(full);
}

TEST(SamplingAccuracyTest, MicrobenchProbeErrorStaysWithinFivePercent) {
  SweepOptions full_opts;
  full_opts.use_cache = false;
  SweepOptions sampled_opts;
  sampled_opts.use_cache = false;
  sampled_opts.sampling = sweepParams();

  for (const char* kernel : {"MM", "STL2", "ED1", "MIM"}) {
    SCOPED_TRACE(kernel);
    const JobSpec job = microbenchJob(PlatformId::kRocket1, kernel, 0.25);
    const SweepResult full = SweepEngine(full_opts).runOne(job);
    const SweepResult sampled = SweepEngine(sampled_opts).runOne(job);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(sampled.ok());
    EXPECT_EQ(sampled.result.retired, full.result.retired);
    EXPECT_LE(relativeError(sampled.result.cycles, full.result.cycles), 0.05)
        << "sampled=" << sampled.result.cycles
        << " full=" << full.result.cycles;
  }
}

TEST(SamplingAccuracyTest, NpbErrorStaysWithinEightPercent) {
  SweepOptions full_opts;
  full_opts.use_cache = false;
  SweepOptions sampled_opts;
  sampled_opts.use_cache = false;
  sampled_opts.sampling = sweepParams();

  const std::vector<JobSpec> jobs = {
      npbJob(PlatformId::kBananaPiSim, NpbBenchmark::kCG, /*ranks=*/2,
             /*scale=*/0.1),
      npbJob(PlatformId::kBananaPiSim, NpbBenchmark::kMG, /*ranks=*/2,
             /*scale=*/0.1),
      npbJob(PlatformId::kMilkVSim, NpbBenchmark::kEP, /*ranks=*/2,
             /*scale=*/0.1),
  };
  const auto full = SweepEngine(full_opts).run(jobs);
  const auto sampled = SweepEngine(sampled_opts).run(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    ASSERT_TRUE(full[i].ok());
    ASSERT_TRUE(sampled[i].ok());
    EXPECT_LE(
        relativeError(sampled[i].result.cycles, full[i].result.cycles), 0.08)
        << "sampled=" << sampled[i].result.cycles
        << " full=" << full[i].result.cycles;
  }
}

// ---------------------------------------------------------------------------
// Serve / elastic round trip.

/// Scratch tree + worker process helpers, same conventions as the serve
/// and elastic suites.
class SamplingServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("bridge-sampling-") + info->name() + "-" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string socketPath() const { return (dir_ / "d.sock").string(); }
  std::string cachePath() const { return (dir_ / "cache").string(); }

  serve::DaemonOptions daemonOptions() const {
    serve::DaemonOptions options;
    options.socket_path = socketPath();
    options.sweep.workers = 2;
    options.sweep.cache_dir = cachePath();
    return options;
  }

  /// Spawn a real sweep_worker attached to `socket` (argv assembled before
  /// fork(): the gtest process is multi-threaded, so the child only makes
  /// async-signal-safe calls).
  static pid_t spawnWorker(const std::string& socket) {
    static std::vector<std::string> args;  // outlives the fork window
    args = {BRIDGE_SWEEP_WORKER_BIN, "--connect", socket, "--jobs", "2"};
    std::vector<char*> argv;
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::close(devnull);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }

  static void reapWorker(pid_t pid) {
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }

  static bool eventually(const std::function<bool()>& cond) {
    for (int spins = 0; spins < 5000; ++spins) {
      if (cond()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return cond();
  }

  fs::path dir_;
};

TEST_F(SamplingServeTest, SampledJobRoundTripsBitIdenticallyViaRemoteWorker) {
  // The fidelity rides in the spec's `sampling.*` overrides, so a daemon
  // and worker with their own sampling knobs off must execute it sampled —
  // and return exactly what a local sampled run computes.
  JobSpec sampled_spec = microbenchJob(PlatformId::kRocket1, "MM", 0.25);
  applySamplingOverrides(&sampled_spec.overrides, sweepParams());
  const JobSpec full_spec = microbenchJob(PlatformId::kRocket1, "MM", 0.25);

  SweepOptions local;
  local.use_cache = false;
  const SweepResult local_sampled = SweepEngine(local).runOne(sampled_spec);
  const SweepResult local_full = SweepEngine(local).runOne(full_spec);
  ASSERT_TRUE(local_sampled.ok());
  ASSERT_TRUE(local_full.ok());
  ASSERT_NE(local_sampled.fingerprint, local_full.fingerprint);

  serve::SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  // Hardening: the worker's environment says to sample everything. The
  // worker must ignore it — fidelity comes only from each job's spec.
  ::setenv("BRIDGE_SAMPLING", "interval=500,measure=50,warmup=10", 1);
  const pid_t worker = spawnWorker(daemon.socketPath());
  ::unsetenv("BRIDGE_SAMPLING");
  ASSERT_GT(worker, 0);
  ASSERT_TRUE(eventually([&] { return daemon.stats().workers == 1; }))
      << "worker never registered";

  serve::ServeClient client(daemon.socketPath());
  const std::vector<SweepResult> remote =
      client.run({sampled_spec, full_spec});
  ASSERT_EQ(remote.size(), 2u);

  // Both executed remotely (one worker attached: nothing runs locally),
  // under distinct fingerprints — the sampled job never dedups against,
  // or serves from, the full-fidelity one.
  const serve::ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.completed_remote, 2u);
  EXPECT_EQ(stats.attached, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);

  EXPECT_EQ(remote[0].fingerprint, local_sampled.fingerprint);
  EXPECT_EQ(remote[0].result.cycles, local_sampled.result.cycles);
  EXPECT_EQ(remote[0].result.retired, local_sampled.result.retired);
  EXPECT_EQ(remote[0].result.seconds, local_sampled.result.seconds);
  EXPECT_EQ(remote[0].result.ipc, local_sampled.result.ipc);
  EXPECT_EQ(remote[0].stats, local_sampled.stats);

  EXPECT_EQ(remote[1].fingerprint, local_full.fingerprint);
  EXPECT_EQ(remote[1].result.cycles, local_full.result.cycles);
  EXPECT_EQ(remote[1].result.seconds, local_full.result.seconds);
  EXPECT_EQ(remote[1].stats, local_full.stats);

  daemon.requestStop();
  reapWorker(worker);
  daemon.join();
}

}  // namespace
}  // namespace bridge
