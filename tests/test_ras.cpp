#include "branch/ras.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

TEST(Ras, LifoOrder) {
  ReturnAddressStack ras(8);
  ras.push(0x100);
  ras.push(0x200);
  ras.push(0x300);
  EXPECT_EQ(ras.pop(), 0x300u);
  EXPECT_EQ(ras.pop(), 0x200u);
  EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, UnderflowYieldsStaleSlots) {
  // Circular stack: popping past empty returns whatever the slot holds
  // (0 on a cold stack, stale entries after use).
  ReturnAddressStack ras(4);
  EXPECT_EQ(ras.pop(), 0u);  // cold
  ras.push(0x100);
  EXPECT_EQ(ras.pop(), 0x100u);
  EXPECT_EQ(ras.pop(), 0u);       // slot 3 is still cold
  EXPECT_EQ(ras.pop(), 0u);       // slot 2
  EXPECT_EQ(ras.pop(), 0u);       // slot 1
  EXPECT_EQ(ras.pop(), 0x100u);   // wrapped back onto the stale entry
}

TEST(Ras, OverflowClobbersOldest) {
  ReturnAddressStack ras(4);
  for (Addr a = 1; a <= 6; ++a) ras.push(a * 0x100);
  // Occupancy saturates at depth; the newest 4 survive.
  EXPECT_EQ(ras.occupancy(), 4u);
  EXPECT_EQ(ras.pop(), 0x600u);
  EXPECT_EQ(ras.pop(), 0x500u);
  EXPECT_EQ(ras.pop(), 0x400u);
  EXPECT_EQ(ras.pop(), 0x300u);
  // 0x100/0x200 were clobbered; underflow wraps onto stale 0x600.
  EXPECT_EQ(ras.pop(), 0x600u);
}

TEST(Ras, SameSiteRecursionSurvivesOverflow) {
  // Linear recursion: every frame returns to the same call site, so even a
  // wrapped stack predicts correctly — why CRd stays fast on a small RAS.
  ReturnAddressStack ras(8);
  const Addr site = 0x1234;
  for (int i = 0; i < 1000; ++i) ras.push(site);
  int correct = 0;
  for (int i = 0; i < 8; ++i) {
    if (ras.pop() == site) ++correct;
  }
  EXPECT_EQ(correct, 8);
}

TEST(Ras, OccupancyTracksDepth) {
  ReturnAddressStack ras(16);
  EXPECT_EQ(ras.occupancy(), 0u);
  ras.push(1);
  ras.push(2);
  EXPECT_EQ(ras.occupancy(), 2u);
  ras.pop();
  EXPECT_EQ(ras.occupancy(), 1u);
}

}  // namespace
}  // namespace bridge
