#include "branch/bimodal.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace bridge {
namespace {

double mispredictRate(DirectionPredictor& p, Addr pc,
                      const std::vector<bool>& outcomes) {
  int wrong = 0;
  for (const bool taken : outcomes) {
    if (p.predict(pc) != taken) ++wrong;
    p.update(pc, taken);
  }
  return static_cast<double>(wrong) / outcomes.size();
}

TEST(Bimodal, LearnsFullyBiasedBranch) {
  BimodalPredictor p(512);
  std::vector<bool> always_taken(1000, true);
  EXPECT_LT(mispredictRate(p, 0x400, always_taken), 0.01);
}

TEST(Bimodal, LearnsBiasedNotTaken) {
  BimodalPredictor p(512);
  std::vector<bool> never(1000, false);
  // Initial counters are weakly taken, so a couple of early misses.
  EXPECT_LT(mispredictRate(p, 0x400, never), 0.01);
}

TEST(Bimodal, AlternatingDefeatsTwoBitCounters) {
  BimodalPredictor p(512);
  std::vector<bool> alt;
  for (int i = 0; i < 1000; ++i) alt.push_back(i % 2 == 0);
  // A 2-bit counter oscillates on strict alternation; rate is high.
  EXPECT_GT(mispredictRate(p, 0x400, alt), 0.4);
}

TEST(Bimodal, HeavilyBiasedApproachesBias) {
  BimodalPredictor p(512);
  Xorshift64Star rng(3);
  std::vector<bool> mostly;
  for (int i = 0; i < 5000; ++i) mostly.push_back(rng.nextBool(0.95));
  EXPECT_LT(mispredictRate(p, 0x400, mostly), 0.12);
}

TEST(Bimodal, DistinctPcsUseDistinctCounters) {
  BimodalPredictor p(512);
  for (int i = 0; i < 100; ++i) {
    p.update(0x400, true);
    p.update(0x800, false);
  }
  EXPECT_TRUE(p.predict(0x400));
  EXPECT_FALSE(p.predict(0x800));
}

TEST(Bimodal, AliasingWrapsAtTableSize) {
  BimodalPredictor p(16);
  // pc and pc + 16*4 share a counter (index uses pc >> 2).
  for (int i = 0; i < 100; ++i) p.update(0x400, true);
  EXPECT_TRUE(p.predict(0x400 + 16 * 4));
}

}  // namespace
}  // namespace bridge
