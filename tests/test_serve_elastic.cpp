// Elastic worker-pool tests (DESIGN.md §5h): v2 codec round-trips, the
// in-band protocol upgrade and its v1 byte-shape guarantee, real worker
// processes completing a sweep bit-identically to local execution, orphan
// re-admission after SIGKILL, stale-complete rejection after lease expiry,
// drain refusing claims while waiting out live leases, chaos outcomes
// through a remote worker, and the policy-signature claim gate.
#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/worker.h"
#include "sweep/fingerprint.h"
#include "sweep/job.h"
#include "sweep/sweep.h"

namespace bridge::serve {
namespace {

namespace fs = std::filesystem;

/// Scratch tree per test (socket + cache dirs that vanish with the
/// fixture), same conventions as the serve daemon suite.
class ServeElasticTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("bridge-elastic-") + info->name() + "-" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string socketPath(const char* tag = "d") const {
    return (dir_ / (std::string(tag) + ".sock")).string();
  }
  std::string cachePath(const char* tag = "cache") const {
    return (dir_ / tag).string();
  }

  DaemonOptions daemonOptions(const char* socket_tag = "d") const {
    DaemonOptions options;
    options.socket_path = socketPath(socket_tag);
    options.sweep.workers = 4;
    options.sweep.cache_dir = cachePath();
    return options;
  }

  /// Spawn a real sweep_worker process attached to `socket`. The binary
  /// path is baked in by CMake ($<TARGET_FILE:sweep_worker>). argv is
  /// assembled before fork() — the gtest process is multi-threaded, so the
  /// child only makes async-signal-safe calls.
  static pid_t spawnWorker(const std::string& socket,
                           const std::vector<std::string>& extra = {}) {
    static std::vector<std::string> args;  // outlives the fork window
    args = {BRIDGE_SWEEP_WORKER_BIN, "--connect", socket, "--jobs", "2"};
    args.insert(args.end(), extra.begin(), extra.end());
    std::vector<char*> argv;
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    // Child: quiet stdout so worker logs don't interleave with gtest.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::close(devnull);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }

  static void reapWorker(pid_t pid, int sig = SIGTERM) {
    ::kill(pid, sig);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }

  /// Poll `cond` until true or ~5s; returns its final value.
  static bool eventually(const std::function<bool()>& cond) {
    for (int spins = 0; spins < 5000; ++spins) {
      if (cond()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return cond();
  }

  fs::path dir_;
};

void expectSamePayload(const SweepResult& a, const SweepResult& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.result.cycles, b.result.cycles);
  EXPECT_EQ(a.result.retired, b.result.retired);
  // Bitwise double equality: a result computed by a worker process must be
  // indistinguishable from a local one, not merely close.
  EXPECT_EQ(
      std::memcmp(&a.result.seconds, &b.result.seconds, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.result.ipc, &b.result.ipc, sizeof(double)), 0);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.error, b.error);
}

TEST(ServeElasticCodec, V2RequestsRoundTrip) {
  ServeRequest hello;
  hello.kind = ServeRequest::Kind::kHello;
  hello.version = std::string(kProtocolVersionV2);
  hello.role = "worker";
  hello.policy = "retries=2,timeout=0,strict=0";
  hello.name = "w-1";
  const auto hello_rt = requestFromJson(requestToJson(hello));
  ASSERT_TRUE(hello_rt.has_value());
  EXPECT_EQ(hello_rt->kind, ServeRequest::Kind::kHello);
  EXPECT_EQ(hello_rt->version, hello.version);
  EXPECT_EQ(hello_rt->role, hello.role);
  EXPECT_EQ(hello_rt->policy, hello.policy);
  EXPECT_EQ(hello_rt->name, hello.name);

  ServeRequest claim;
  claim.kind = ServeRequest::Kind::kClaim;
  claim.max_jobs = 3;
  const auto claim_rt = requestFromJson(requestToJson(claim));
  ASSERT_TRUE(claim_rt.has_value());
  EXPECT_EQ(claim_rt->kind, ServeRequest::Kind::kClaim);
  EXPECT_EQ(claim_rt->max_jobs, 3u);

  ServeRequest complete;
  complete.kind = ServeRequest::Kind::kComplete;
  complete.lease = 42;
  complete.result.label = "cell";
  complete.result.fingerprint = "abc123";
  complete.result.outcome = JobOutcome::kOk;
  complete.result.result.cycles = 123456;
  complete.result.result.ipc = 1.0 / 3.0;  // must round-trip bit-exactly
  complete.result.attempts = 1;
  const auto complete_rt = requestFromJson(requestToJson(complete));
  ASSERT_TRUE(complete_rt.has_value());
  EXPECT_EQ(complete_rt->kind, ServeRequest::Kind::kComplete);
  EXPECT_EQ(complete_rt->lease, 42u);
  EXPECT_EQ(complete_rt->result.fingerprint, "abc123");
  EXPECT_EQ(complete_rt->result.result.cycles, 123456u);
  EXPECT_EQ(std::memcmp(&complete_rt->result.result.ipc,
                        &complete.result.result.ipc, sizeof(double)),
            0);

  ServeRequest fail;
  fail.kind = ServeRequest::Kind::kFail;
  fail.lease = 7;
  fail.message = "engine threw: poison";
  const auto fail_rt = requestFromJson(requestToJson(fail));
  ASSERT_TRUE(fail_rt.has_value());
  EXPECT_EQ(fail_rt->kind, ServeRequest::Kind::kFail);
  EXPECT_EQ(fail_rt->lease, 7u);
  EXPECT_EQ(fail_rt->message, fail.message);
}

TEST(ServeElasticCodec, V2ResponsesRoundTrip) {
  ServeResponse hello;
  hello.kind = ServeResponse::Kind::kHello;
  hello.hello.version = std::string(kProtocolVersionV2);
  hello.hello.policy = "retries=2";
  hello.hello.cache_dir = "/tmp/cache";
  hello.hello.workers = 4;
  hello.hello.lease_ms = 10000;
  hello.hello.worker_id = 9;
  const auto hello_rt = responseFromJson(responseToJson(hello));
  ASSERT_TRUE(hello_rt.has_value());
  EXPECT_EQ(hello_rt->kind, ServeResponse::Kind::kHello);
  EXPECT_EQ(hello_rt->hello.version, kProtocolVersionV2);
  EXPECT_EQ(hello_rt->hello.lease_ms, 10000u);
  EXPECT_EQ(hello_rt->hello.worker_id, 9u);

  ServeResponse claims;
  claims.kind = ServeResponse::Kind::kClaims;
  claims.draining = true;
  LeaseGrant grant;
  grant.lease = 5;
  grant.deadline_ms = 250;
  grant.job = microbenchJob(PlatformId::kRocket1, "MM", 0.25, 99);
  claims.claims.push_back(grant);
  const auto claims_rt = responseFromJson(responseToJson(claims));
  ASSERT_TRUE(claims_rt.has_value());
  EXPECT_EQ(claims_rt->kind, ServeResponse::Kind::kClaims);
  EXPECT_TRUE(claims_rt->draining);
  ASSERT_EQ(claims_rt->claims.size(), 1u);
  EXPECT_EQ(claims_rt->claims[0].lease, 5u);
  EXPECT_EQ(claims_rt->claims[0].deadline_ms, 250u);
  // The job survives the ride: fingerprints of original and round-tripped
  // specs must agree (the worker executes exactly what was admitted).
  EXPECT_EQ(jobFingerprint(claims_rt->claims[0].job), jobFingerprint(grant.job));

  ServeResponse ack;
  ack.kind = ServeResponse::Kind::kLeaseAck;
  ack.accepted = false;
  ack.message = "unknown or expired lease";
  const auto ack_rt = responseFromJson(responseToJson(ack));
  ASSERT_TRUE(ack_rt.has_value());
  EXPECT_EQ(ack_rt->kind, ServeResponse::Kind::kLeaseAck);
  EXPECT_FALSE(ack_rt->accepted);
  EXPECT_EQ(ack_rt->message, ack.message);
}

TEST(ServeElasticCodec, ElasticStatsAreGatedByConnectionVersion) {
  ServeStats stats;
  stats.requests = 3;
  stats.admitted = 2;
  stats.workers = 1;
  stats.claimed = 5;
  stats.completed_remote = 4;
  stats.leases_expired = 1;
  stats.orphans_readmitted = 1;

  // v1 shape: none of the elastic keys may appear (deployed v1 parsers
  // treat unknown fields as a protocol violation).
  const std::string v1 = statsToJson(stats, /*elastic=*/false);
  for (const char* key : {"\"workers\"", "\"claimed\"", "\"completed_remote\"",
                          "\"leases_expired\"", "\"orphans_readmitted\""}) {
    EXPECT_EQ(v1.find(key), std::string::npos) << key << " in " << v1;
  }

  // v2 shape round-trips all counters; the v1 shape still parses.
  const auto v2_rt = statsFromJson(statsToJson(stats, /*elastic=*/true));
  ASSERT_TRUE(v2_rt.has_value());
  EXPECT_EQ(v2_rt->workers, 1u);
  EXPECT_EQ(v2_rt->claimed, 5u);
  EXPECT_EQ(v2_rt->completed_remote, 4u);
  EXPECT_EQ(v2_rt->leases_expired, 1u);
  EXPECT_EQ(v2_rt->orphans_readmitted, 1u);
  const auto v1_rt = statsFromJson(v1);
  ASSERT_TRUE(v1_rt.has_value());
  EXPECT_EQ(v1_rt->requests, 3u);
  EXPECT_EQ(v1_rt->workers, 0u);  // absent in v1: stays default
}

TEST_F(ServeElasticTest, V1ClientRoundTripsWithUnchangedByteShape) {
  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  // A ServeClient that never negotiates IS a v1 client: the v2 daemon must
  // serve it exactly as before.
  ServeClient client(daemon.socketPath());
  EXPECT_EQ(client.hello().version, kProtocolVersion);
  EXPECT_EQ(client.negotiatedVersion(), kProtocolVersion);
  const std::vector<SweepResult> results =
      client.run({microbenchJob(PlatformId::kRocket1, "MM", 0.25, 21)});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());
  client.ping();

  // Raw-socket check: the unsolicited hello and a v1 stats response must
  // not contain a single v2 key.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string path = daemon.socketPath();
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  std::string payload, io_error;
  ASSERT_TRUE(recvFrame(fd, &payload, &io_error)) << io_error;
  for (const char* key : {"lease_ms", "worker_id"}) {
    EXPECT_EQ(payload.find(key), std::string::npos)
        << key << " leaked into the unsolicited hello: " << payload;
  }
  ASSERT_TRUE(sendFrame(fd, "{\"type\":\"stats\"}", &io_error)) << io_error;
  ASSERT_TRUE(recvFrame(fd, &payload, &io_error)) << io_error;
  for (const char* key : {"\"workers\"", "claimed", "completed_remote",
                          "leases_expired", "orphans_readmitted"}) {
    EXPECT_EQ(payload.find(key), std::string::npos)
        << key << " leaked into a v1 stats frame: " << payload;
  }
  ::close(fd);

  // After an in-band upgrade the same request *does* carry the counters.
  ServeClient v2(daemon.socketPath());
  v2.negotiate("client", "", "elastic-test");
  EXPECT_EQ(v2.negotiatedVersion(), kProtocolVersionV2);
  EXPECT_EQ(v2.hello().lease_ms, daemon.scheduler().leaseMs());
  const ServeStats stats = v2.stats();
  EXPECT_EQ(stats.workers, 0u);
  EXPECT_GE(stats.executed, 1u);
}

TEST_F(ServeElasticTest, TwoWorkersCompleteOverlappingGridsBitIdentically) {
  // The PR's acceptance demo: a 2-worker deployment racing overlapping NPB
  // grids must produce results bit-identical to a plain local engine, with
  // every unique fingerprint executed exactly once — by whichever process.
  const auto makeCell = [](int index) {
    switch (index) {
      case 0:
        return npbJob(PlatformId::kRocket1, NpbBenchmark::kCG, 1, 0.1, 31);
      case 1:
        return npbJob(PlatformId::kRocket1, NpbBenchmark::kCG, 2, 0.1, 31);
      case 2:
        return npbJob(PlatformId::kRocket1, NpbBenchmark::kMG, 1, 0.1, 31);
      default:
        return npbJob(PlatformId::kRocket2, NpbBenchmark::kCG, 1, 0.1, 31);
    }
  };
  std::vector<JobSpec> cells;
  for (int i = 0; i < 4; ++i) cells.push_back(makeCell(i));

  // Ground truth: a direct local engine on its own cache.
  SweepOptions local_options;
  local_options.workers = 2;
  local_options.cache_dir = cachePath("local-cache");
  SweepEngine local(local_options);
  std::map<std::string, SweepResult> truth;
  for (const SweepResult& r : local.run(cells)) {
    truth.emplace(r.fingerprint, r);
  }

  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const pid_t w1 = spawnWorker(daemon.socketPath());
  const pid_t w2 = spawnWorker(daemon.socketPath());
  ASSERT_GT(w1, 0);
  ASSERT_GT(w2, 0);
  ASSERT_TRUE(eventually([&] { return daemon.stats().workers == 2; }))
      << "workers never registered";

  constexpr int kClients = 2;
  std::vector<std::vector<SweepResult>> client_results(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<JobSpec> grid;
      for (int i = 0; i < 4; ++i) {
        JobSpec cell = makeCell((c + i) % 4);
        cell.label += " [client " + std::to_string(c) + "]";
        grid.push_back(std::move(cell));
      }
      ServeClient client(daemon.socketPath());
      client_results[c] = client.run(grid);
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(client_results[c].size(), 4u) << "client " << c;
    for (const SweepResult& r : client_results[c]) {
      ASSERT_TRUE(truth.count(r.fingerprint))
          << "client " << c << " got unknown fingerprint " << r.fingerprint;
      expectSamePayload(r, truth.at(r.fingerprint));
    }
  }

  // Counter identity on a cold, failure-free run: every unique fingerprint
  // executed exactly once, locally or remotely; everything else attached
  // or hit the cache.
  const ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.jobs, 8u);
  EXPECT_EQ(stats.executed + stats.completed_remote, 4u);
  EXPECT_EQ(stats.admitted + stats.attached, 8u);
  EXPECT_EQ(stats.cache_hits,
            stats.admitted - stats.executed - stats.completed_remote);
  EXPECT_GE(stats.completed_remote, 1u) << "no job ever ran on a worker";
  EXPECT_EQ(stats.claimed, stats.completed_remote);  // nothing orphaned
  EXPECT_EQ(stats.orphans_readmitted, 0u);
  EXPECT_EQ(stats.report.ok, stats.report.total);

  reapWorker(w1);
  reapWorker(w2);
  ASSERT_TRUE(eventually([&] { return daemon.stats().workers == 0; }));
}

TEST_F(ServeElasticTest, SigkilledWorkerOrphansAreReadmittedAndConverge) {
  // Chaos slows every execution so the worker is guaranteed to die holding
  // a lease. The env var is how the worker *process* picks up the same
  // fault plan — the policy-signature handshake would refuse it otherwise.
  ::setenv("BRIDGE_CHAOS", "slow=1.0,slow-ms=500,seed=7", 1);
  DaemonOptions options = daemonOptions();  // reads BRIDGE_CHAOS now
  options.lease_ms = 300;
  SweepDaemon daemon(options);
  ::unsetenv("BRIDGE_CHAOS");
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  ::setenv("BRIDGE_CHAOS", "slow=1.0,slow-ms=500,seed=7", 1);
  const pid_t worker = spawnWorker(daemon.socketPath(), {"--jobs", "1"});
  ::unsetenv("BRIDGE_CHAOS");
  ASSERT_GT(worker, 0);
  ASSERT_TRUE(eventually([&] { return daemon.stats().workers == 1; }));

  std::vector<SweepResult> results;
  std::thread client_thread([&] {
    ServeClient client(daemon.socketPath());
    results = client.run({
        microbenchJob(PlatformId::kRocket1, "MM", 0.25, 41),
        microbenchJob(PlatformId::kRocket1, "MIM", 0.25, 41),
    });
  });

  // SIGKILL the worker the moment it holds a lease; the daemon must notice
  // the drop, orphan the lease, and finish the sweep locally.
  ASSERT_TRUE(eventually([&] { return daemon.stats().claimed >= 1; }))
      << "worker never claimed a job";
  reapWorker(worker, SIGKILL);
  client_thread.join();

  ASSERT_EQ(results.size(), 2u);
  for (const SweepResult& r : results) {
    EXPECT_TRUE(r.ok()) << r.label << ": " << r.error;
  }
  const ServeStats stats = daemon.stats();
  EXPECT_GE(stats.orphans_readmitted, 1u);
  EXPECT_EQ(stats.workers, 0u);
  // Convergence without loss or duplication: both unique jobs resolved
  // exactly once (the killed worker completed nothing).
  EXPECT_EQ(stats.executed + stats.completed_remote, 2u);
  EXPECT_EQ(stats.report.total, 2u);
  EXPECT_EQ(stats.report.ok, 2u);
}

TEST_F(ServeElasticTest, StaleCompleteAfterLeaseExpiryIsRejected) {
  DaemonOptions options = daemonOptions();
  options.lease_ms = 100;  // expire fast; the manual worker never heartbeats
  SweepDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  // A "worker" driven by hand: claims a job, then goes silent.
  ServeClient manual(daemon.socketPath());
  manual.negotiate("worker", daemon.policySignature(), "manual");
  ASSERT_EQ(manual.hello().lease_ms, 100u);

  const JobSpec job = microbenchJob(PlatformId::kRocket1, "MM", 0.25, 51);
  std::vector<SweepResult> results;
  std::thread client_thread([&] {
    ServeClient client(daemon.socketPath());
    results = client.run({job});
  });

  bool draining = false;
  std::vector<LeaseGrant> grants;
  ASSERT_TRUE(eventually([&] {
    grants = manual.claim(1, &draining);
    return !grants.empty();
  })) << "manual worker never got the lease";
  ASSERT_EQ(grants.size(), 1u);

  // Silence: the lease expires, the job is orphaned, re-admitted, aged back
  // to local, and resolved there — the client's run completes without us.
  client_thread.join();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());

  // The stale post must bounce: the lease left the table at expiry, and
  // first resolution wins. A duplicate bounces identically.
  SweepResult forged;
  forged.label = job.label;
  forged.fingerprint = jobFingerprint(job);
  forged.outcome = JobOutcome::kOk;
  forged.result.cycles = 1;  // nothing like the real simulation
  forged.attempts = 1;
  std::string reason;
  EXPECT_FALSE(manual.completeLease(grants[0].lease, forged, &reason));
  EXPECT_FALSE(reason.empty());
  reason.clear();
  EXPECT_FALSE(manual.completeLease(grants[0].lease, forged, &reason));
  EXPECT_FALSE(reason.empty());

  // The client's result is the real local execution, not the forgery.
  EXPECT_NE(results[0].result.cycles, 1u);
  const ServeStats stats = daemon.stats();
  EXPECT_GE(stats.leases_expired, 1u);
  EXPECT_GE(stats.orphans_readmitted, 1u);
  EXPECT_EQ(stats.completed_remote, 0u);
  EXPECT_EQ(stats.executed, 1u);
}

TEST_F(ServeElasticTest, DrainRefusesNewClaimsAndWaitsForLiveLeases) {
  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  ServeClient manual(daemon.socketPath());
  manual.negotiate("worker", daemon.policySignature(), "manual");

  const JobSpec held = microbenchJob(PlatformId::kRocket1, "MM", 0.25, 61);
  std::vector<SweepResult> results;
  std::thread client_thread([&] {
    ServeClient client(daemon.socketPath());
    results = client.run({held});
  });

  bool draining = false;
  std::vector<LeaseGrant> grants;
  ASSERT_TRUE(eventually([&] {
    grants = manual.claim(1, &draining);
    return !grants.empty();
  }));
  EXPECT_FALSE(draining);

  // Drain while the lease is live: the drain response must wait for it.
  RunReport final_report;
  std::thread drainer([&] {
    ServeClient client(daemon.socketPath());
    final_report = client.shutdownDaemon();
  });
  ASSERT_TRUE(eventually([&] {
    std::vector<LeaseGrant> more = manual.claim(1, &draining);
    EXPECT_TRUE(more.empty()) << "claim granted during drain";
    return draining;
  })) << "worker was never told the daemon is draining";

  // The leased job still completes remotely — drain waits, not kills.
  SweepResult result;
  result.label = grants[0].job.label;
  result.fingerprint = jobFingerprint(grants[0].job);
  result.outcome = JobOutcome::kOk;
  result.result.cycles = 777;
  result.attempts = 1;
  std::string reason;
  EXPECT_TRUE(manual.completeLease(grants[0].lease, result, &reason))
      << reason;

  drainer.join();
  client_thread.join();
  EXPECT_EQ(final_report.total, 1u);  // the leased job is in the final report
  EXPECT_EQ(final_report.ok, 1u);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].result.cycles, 777u);
  const ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.completed_remote, 1u);
  daemon.join();
}

TEST_F(ServeElasticTest, ChaosThroughWorkerMatchesLocalOutcomes) {
  // Deterministic chaos must produce the same outcomes whether the faulted
  // job runs in the daemon or in a worker process: the fault plan keys off
  // the fingerprint, and the policy handshake guarantees both sides carry
  // the same plan.
  const char* kSpec = "match=poison";
  DaemonOptions options = daemonOptions();
  options.sweep.faults = FaultPlan::fromSpec(kSpec);
  options.sweep.failures.quarantine = false;

  std::vector<JobSpec> grid = {
      microbenchJob(PlatformId::kRocket1, "MM", 0.25, 71),
      microbenchJob(PlatformId::kRocket1, "MIM", 0.25, 71),
      microbenchJob(PlatformId::kRocket1, "MM", 0.25, 72),
  };
  grid[0].label = "poison " + grid[0].label;

  // Ground truth: same fault plan, same policy, plain local engine.
  SweepOptions local_options;
  local_options.workers = 2;
  local_options.cache_dir = cachePath("local-cache");
  local_options.faults = FaultPlan::fromSpec(kSpec);
  local_options.failures.quarantine = false;
  SweepEngine local(local_options);
  std::map<std::string, SweepResult> truth;
  for (const SweepResult& r : local.run(grid)) {
    truth.emplace(r.fingerprint, r);
  }

  SweepDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  WorkerOptions wopts;
  wopts.socket_path = daemon.socketPath();
  wopts.name = "chaos-worker";
  wopts.sweep.workers = 2;
  wopts.sweep.faults = FaultPlan::fromSpec(kSpec);
  wopts.sweep.failures.quarantine = false;
  SweepWorker worker(wopts);
  std::thread worker_thread([&] { worker.run(); });
  ASSERT_TRUE(eventually([&] { return daemon.stats().workers == 1; }));

  ServeClient client(daemon.socketPath());
  const std::vector<SweepResult> results = client.run(grid);
  worker.requestStop();
  worker_thread.join();

  ASSERT_EQ(results.size(), grid.size());
  for (const SweepResult& r : results) {
    ASSERT_TRUE(truth.count(r.fingerprint)) << r.label;
    const SweepResult& expected = truth.at(r.fingerprint);
    EXPECT_EQ(r.outcome, expected.outcome) << r.label;
    EXPECT_EQ(r.error, expected.error) << r.label;
    EXPECT_EQ(r.attempts, expected.attempts) << r.label;
    if (r.ok()) expectSamePayload(r, expected);
  }
  const ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.executed + stats.completed_remote, 3u);
  EXPECT_GE(stats.completed_remote, 1u) << "no job ever ran on the worker";
}

TEST_F(ServeElasticTest, WorkerPolicyMismatchIsRefusedAtHello) {
  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  // In-process worker with a different retry budget: the constructor (which
  // performs the upgrade) must throw before any claim can happen.
  WorkerOptions wopts;
  wopts.socket_path = daemon.socketPath();
  wopts.sweep.failures.max_retries = 7;
  EXPECT_THROW(SweepWorker{wopts}, std::runtime_error);

  // Same gate at the raw protocol level.
  ServeClient manual(daemon.socketPath());
  EXPECT_THROW(manual.negotiate("worker", "retries=99,chaos=none", "rogue"),
               std::runtime_error);

  // And a nonsense role never reaches registration.
  ServeClient other(daemon.socketPath());
  EXPECT_THROW(other.negotiate("gremlin", daemon.policySignature(), "x"),
               std::runtime_error);

  EXPECT_EQ(daemon.stats().workers, 0u);
}

}  // namespace
}  // namespace bridge::serve
