#include "core/ooo.h"

#include <gtest/gtest.h>

#include "dram/timings.h"
#include "sim/rng.h"

namespace bridge {
namespace {

MemSysParams fastMem() {
  MemSysParams p;
  p.l1i = {64, 8, 1, 1};
  p.l1d = {64, 8, 2, 8};
  p.l2 = {1024, 8, 14, 4, 2, 8};
  p.bus = {128, 1};
  p.dram = fixedLatency(100.0);
  p.dram_channels = 1;
  p.freq_ghz = 1.0;
  return p;
}

MicroOp aluOp(Reg dst, Reg src, Addr pc = 0x400) {
  MicroOp op;
  op.cls = OpClass::kIntAlu;
  op.dst = dst;
  op.src0 = src;
  op.pc = pc;
  return op;
}

struct Rig {
  StatRegistry stats;
  MemoryHierarchy mem;
  OooCore core;

  explicit Rig(const OooParams& p)
      : mem(1, fastMem(), &stats), core(0, p, &mem, &stats, "core0") {}
};

TEST(Ooo, PresetsAreOrderedByResources) {
  const OooParams s = smallBoomParams();
  const OooParams m = mediumBoomParams();
  const OooParams l = largeBoomParams();
  EXPECT_LT(s.rob, m.rob);
  EXPECT_LT(m.rob, l.rob);
  EXPECT_LE(s.decode_width, m.decode_width);
  EXPECT_LT(m.decode_width, l.decode_width);
  EXPECT_LT(s.ldq, l.ldq);
}

TEST(Ooo, IndependentAluIpcTracksDecodeWidth) {
  for (const OooParams& p :
       {smallBoomParams(), mediumBoomParams(), largeBoomParams()}) {
    Rig rig(p);
    for (int i = 0; i < 12000; ++i) {
      rig.core.consume(aluOp(intReg(5 + (i % 16)), intReg(25)));
    }
    rig.core.drain();
    EXPECT_GT(rig.core.ipc(), 0.75 * p.decode_width);
    EXPECT_LE(rig.core.ipc(), p.decode_width + 0.05);
  }
}

TEST(Ooo, WiderCoreFasterOnIlp) {
  auto run = [&](const OooParams& p) {
    Rig rig(p);
    for (int i = 0; i < 8000; ++i) {
      rig.core.consume(aluOp(intReg(5 + (i % 16)), intReg(25)));
    }
    return rig.core.drain();
  };
  EXPECT_LT(run(largeBoomParams()), run(smallBoomParams()));
}

TEST(Ooo, SerialChainPinsIpcRegardlessOfWidth) {
  Rig rig(largeBoomParams());
  for (int i = 0; i < 6000; ++i) {
    rig.core.consume(aluOp(intReg(5), intReg(5)));
  }
  rig.core.drain();
  EXPECT_NEAR(rig.core.ipc(), 1.0, 0.1);
}

TEST(Ooo, FiveChainsUseIssueWidth) {
  // EM5 pattern: 5 interleaved mul chains; a 3-issue core overlaps them.
  auto run = [&](const OooParams& p) {
    Rig rig(p);
    MicroOp m;
    m.cls = OpClass::kIntMul;
    m.pc = 0x400;
    for (int i = 0; i < 5000; ++i) {
      const Reg r = intReg(5 + (i % 5));
      m.dst = r;
      m.src0 = r;
      rig.core.consume(m);
    }
    return rig.core.drain();
  };
  EXPECT_LT(run(largeBoomParams()), run(smallBoomParams()));
}

TEST(Ooo, RobLimitsMemoryLevelParallelism) {
  // Many independent misses: a small ROB can't keep as many in flight.
  auto run = [&](unsigned rob) {
    OooParams p = largeBoomParams();
    p.rob = rob;
    Rig rig(p);
    MicroOp ld;
    ld.cls = OpClass::kLoad;
    ld.pc = 0x400;
    ld.mem_size = 8;
    for (int i = 0; i < 2000; ++i) {
      ld.dst = intReg(5 + (i % 16));
      ld.addr = 0x100000 + static_cast<Addr>(i) * 4096;
      rig.core.consume(ld);
    }
    return rig.core.drain();
  };
  EXPECT_LT(run(96), run(8));
}

TEST(Ooo, LoadQueueBoundsOutstandingLoads) {
  auto run = [&](unsigned ldq) {
    OooParams p = largeBoomParams();
    p.ldq = ldq;
    Rig rig(p);
    MicroOp ld;
    ld.cls = OpClass::kLoad;
    ld.pc = 0x400;
    ld.mem_size = 8;
    for (int i = 0; i < 1000; ++i) {
      ld.dst = intReg(5 + (i % 16));
      ld.addr = 0x100000 + static_cast<Addr>(i) * 4096;
      rig.core.consume(ld);
    }
    return rig.core.drain();
  };
  EXPECT_LE(run(24), run(2));
}

TEST(Ooo, StoreToLoadForwarding) {
  // A load that forwards from an in-flight store starts its dependent
  // chain immediately; a load to an unrelated cold line waits for DRAM.
  // Both runs end with the store's fill, so compare via a long dependent
  // ALU chain hanging off the load.
  auto run = [&](Addr load_addr) {
    Rig rig(largeBoomParams());
    MicroOp st;
    st.cls = OpClass::kStore;
    st.pc = 0x400;
    st.addr = 0x500000;  // cold line: the store itself misses
    st.mem_size = 8;
    rig.core.consume(st);
    MicroOp ld;
    ld.cls = OpClass::kLoad;
    ld.dst = intReg(5);
    ld.pc = 0x404;
    ld.addr = load_addr;
    ld.mem_size = 8;
    rig.core.consume(ld);
    rig.core.consume(aluOp(intReg(5), intReg(5)));
    for (int i = 0; i < 300; ++i) {
      rig.core.consume(aluOp(intReg(5), intReg(5), 0x408));
    }
    return rig.core.drain();
  };
  const Cycle forwarded = run(0x500000);   // same line: STQ forwarding
  const Cycle cold = run(0x600000);        // unrelated cold line
  EXPECT_LT(forwarded + 50, cold);
}

TEST(Ooo, MispredictsThrottleThroughput) {
  auto run = [&](bool predictable) {
    Rig rig(largeBoomParams());
    MicroOp br;
    br.cls = OpClass::kBranch;
    br.pc = 0x400;
    br.addr = 0x500;
    Xorshift64Star rng(3);
    for (int i = 0; i < 6000; ++i) {
      br.taken = predictable ? false : rng.nextBool(0.5);
      rig.core.consume(br);
      rig.core.consume(aluOp(intReg(5), intReg(6)));
    }
    return rig.core.drain();
  };
  EXPECT_GT(run(false), 2 * run(true));
}

TEST(Ooo, FenceSerializes) {
  Rig rig(largeBoomParams());
  MicroOp ld;
  ld.cls = OpClass::kLoad;
  ld.dst = intReg(5);
  ld.pc = 0x400;
  ld.addr = 0x700000;
  ld.mem_size = 8;
  rig.core.consume(ld);
  MicroOp fence;
  fence.cls = OpClass::kFence;
  fence.pc = 0x404;
  rig.core.consume(fence);
  EXPECT_GT(rig.core.drain(), 100u);
}

TEST(Ooo, DrainIsIdempotent) {
  Rig rig(largeBoomParams());
  for (int i = 0; i < 100; ++i) rig.core.consume(aluOp(intReg(5), intReg(6)));
  const Cycle a = rig.core.drain();
  const Cycle b = rig.core.drain();
  EXPECT_EQ(a, b);
}

TEST(Ooo, RetiredCountsEveryUop) {
  Rig rig(smallBoomParams());
  for (int i = 0; i < 321; ++i) rig.core.consume(aluOp(intReg(5), intReg(6)));
  EXPECT_EQ(rig.core.retired(), 321u);
}

}  // namespace
}  // namespace bridge
