#include "sweep/sweep.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace bridge {
namespace {

namespace fs = std::filesystem;

class SweepEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ = fs::path(::testing::TempDir()) /
                 ("bridge-sweep-" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
    fs::remove_all(cache_dir_);
    options_.workers = 2;
    options_.cache_dir = cache_dir_.string();
  }
  void TearDown() override { fs::remove_all(cache_dir_); }

  static std::vector<JobSpec> smallGrid() {
    return {microbenchJob(PlatformId::kRocket1, "MM", 0.05),
            microbenchJob(PlatformId::kRocket2, "STL2", 0.05),
            microbenchJob(PlatformId::kBananaPiSim, "ED1", 0.05)};
  }

  fs::path cache_dir_;
  SweepOptions options_;
};

TEST_F(SweepEngineTest, ResultsComeBackInJobOrder) {
  SweepEngine engine(options_);
  const auto results = engine.run(smallGrid());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].label, "MM@Rocket1");
  EXPECT_EQ(results[1].label, "STL2@Rocket2");
  EXPECT_EQ(results[2].label, "ED1@BananaPiSim");
  for (const SweepResult& r : results) {
    EXPECT_FALSE(r.from_cache);
    EXPECT_GT(r.result.cycles, 0u);
    EXPECT_FALSE(r.stats.empty());
  }
}

TEST_F(SweepEngineTest, EngineMatchesDirectHarnessRun) {
  SweepEngine engine(options_);
  const SweepResult viaEngine =
      engine.runOne(microbenchJob(PlatformId::kBananaPiSim, "MM", 0.1));
  const RunResult direct = runMicrobench(PlatformId::kBananaPiSim, "MM", 0.1);
  EXPECT_EQ(viaEngine.result.cycles, direct.cycles);
  EXPECT_EQ(viaEngine.result.retired, direct.retired);
  EXPECT_DOUBLE_EQ(viaEngine.result.seconds, direct.seconds);
}

TEST_F(SweepEngineTest, SecondRunIsServedFromCacheWithIdenticalResults) {
  SweepEngine engine(options_);
  const auto cold = engine.run(smallGrid());
  const auto warm = engine.run(smallGrid());
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_FALSE(cold[i].from_cache);
    EXPECT_TRUE(warm[i].from_cache) << cold[i].label;
    EXPECT_EQ(warm[i].fingerprint, cold[i].fingerprint);
    EXPECT_EQ(warm[i].result.cycles, cold[i].result.cycles);
    EXPECT_EQ(warm[i].result.retired, cold[i].result.retired);
    EXPECT_EQ(warm[i].result.messages, cold[i].result.messages);
    EXPECT_EQ(warm[i].result.seconds, cold[i].result.seconds);
    EXPECT_EQ(warm[i].result.ipc, cold[i].result.ipc);
    EXPECT_EQ(warm[i].stats, cold[i].stats);
  }
}

TEST_F(SweepEngineTest, PlatformParamChangeMissesTheCache) {
  SweepEngine engine(options_);
  JobSpec job = microbenchJob(PlatformId::kRocket1, "ML2", 0.05);
  const SweepResult first = engine.runOne(job);
  EXPECT_FALSE(first.from_cache);

  // Same workload, one timing parameter moved: must re-simulate.
  JobSpec tuned = job;
  tuned.overrides.set("l2.banks", "4");
  const SweepResult second = engine.runOne(tuned);
  EXPECT_FALSE(second.from_cache);
  EXPECT_NE(second.fingerprint, first.fingerprint);

  // And the original is still a hit.
  EXPECT_TRUE(engine.runOne(job).from_cache);
}

TEST_F(SweepEngineTest, NoCacheOptionBypassesTheCache) {
  options_.use_cache = false;
  SweepEngine engine(options_);
  engine.run(smallGrid());
  const auto again = engine.run(smallGrid());
  for (const SweepResult& r : again) EXPECT_FALSE(r.from_cache);
}

TEST_F(SweepEngineTest, JobExceptionPropagatesFromRun) {
  SweepEngine engine(options_);
  std::vector<JobSpec> jobs = smallGrid();
  jobs.push_back(microbenchJob(PlatformId::kRocket1, "NoSuchKernel", 0.05));
  EXPECT_THROW(engine.run(jobs), std::out_of_range);
}

TEST_F(SweepEngineTest, UnknownOverrideKeyThrows) {
  SweepEngine engine(options_);
  JobSpec job = microbenchJob(PlatformId::kRocket1, "MM", 0.05);
  job.overrides.set("l2.bankz", "4");  // typo must not be ignored
  EXPECT_THROW(engine.runOne(job), std::invalid_argument);
}

TEST(SweepCliTest, ParsesJobsAndCacheFlags) {
  const char* argv[] = {"bench", "--jobs", "8", "--no-cache", "--csv",
                        "extra"};
  const SweepCli cli =
      SweepCli::parse(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.options.workers, 8u);
  EXPECT_FALSE(cli.options.use_cache);
  EXPECT_TRUE(cli.csv);
  ASSERT_EQ(cli.rest.size(), 1u);
  EXPECT_EQ(cli.rest[0], "extra");

  const char* argv2[] = {"bench", "--jobs=3"};
  EXPECT_EQ(SweepCli::parse(2, const_cast<char**>(argv2)).options.workers,
            3u);
}

}  // namespace
}  // namespace bridge
