#include "sweep/sweep.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "sim/log.h"

namespace bridge {
namespace {

namespace fs = std::filesystem;

class SweepEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ = fs::path(::testing::TempDir()) /
                 ("bridge-sweep-" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
    fs::remove_all(cache_dir_);
    options_.workers = 2;
    options_.cache_dir = cache_dir_.string();
  }
  void TearDown() override { fs::remove_all(cache_dir_); }

  static std::vector<JobSpec> smallGrid() {
    return {microbenchJob(PlatformId::kRocket1, "MM", 0.05),
            microbenchJob(PlatformId::kRocket2, "STL2", 0.05),
            microbenchJob(PlatformId::kBananaPiSim, "ED1", 0.05)};
  }

  fs::path cache_dir_;
  SweepOptions options_;
};

TEST_F(SweepEngineTest, ResultsComeBackInJobOrder) {
  SweepEngine engine(options_);
  const auto results = engine.run(smallGrid());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].label, "MM@Rocket1");
  EXPECT_EQ(results[1].label, "STL2@Rocket2");
  EXPECT_EQ(results[2].label, "ED1@BananaPiSim");
  for (const SweepResult& r : results) {
    EXPECT_FALSE(r.from_cache);
    EXPECT_GT(r.result.cycles, 0u);
    EXPECT_FALSE(r.stats.empty());
  }
}

TEST_F(SweepEngineTest, EngineMatchesDirectHarnessRun) {
  SweepEngine engine(options_);
  const SweepResult viaEngine =
      engine.runOne(microbenchJob(PlatformId::kBananaPiSim, "MM", 0.1));
  const RunResult direct = runMicrobench(PlatformId::kBananaPiSim, "MM", 0.1);
  EXPECT_EQ(viaEngine.result.cycles, direct.cycles);
  EXPECT_EQ(viaEngine.result.retired, direct.retired);
  EXPECT_DOUBLE_EQ(viaEngine.result.seconds, direct.seconds);
}

TEST_F(SweepEngineTest, SecondRunIsServedFromCacheWithIdenticalResults) {
  SweepEngine engine(options_);
  const auto cold = engine.run(smallGrid());
  const auto warm = engine.run(smallGrid());
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_FALSE(cold[i].from_cache);
    EXPECT_TRUE(warm[i].from_cache) << cold[i].label;
    EXPECT_EQ(warm[i].fingerprint, cold[i].fingerprint);
    EXPECT_EQ(warm[i].result.cycles, cold[i].result.cycles);
    EXPECT_EQ(warm[i].result.retired, cold[i].result.retired);
    EXPECT_EQ(warm[i].result.messages, cold[i].result.messages);
    EXPECT_EQ(warm[i].result.seconds, cold[i].result.seconds);
    EXPECT_EQ(warm[i].result.ipc, cold[i].result.ipc);
    EXPECT_EQ(warm[i].stats, cold[i].stats);
  }
}

TEST_F(SweepEngineTest, PlatformParamChangeMissesTheCache) {
  SweepEngine engine(options_);
  JobSpec job = microbenchJob(PlatformId::kRocket1, "ML2", 0.05);
  const SweepResult first = engine.runOne(job);
  EXPECT_FALSE(first.from_cache);

  // Same workload, one timing parameter moved: must re-simulate.
  JobSpec tuned = job;
  tuned.overrides.set("l2.banks", "4");
  const SweepResult second = engine.runOne(tuned);
  EXPECT_FALSE(second.from_cache);
  EXPECT_NE(second.fingerprint, first.fingerprint);

  // And the original is still a hit.
  EXPECT_TRUE(engine.runOne(job).from_cache);
}

TEST_F(SweepEngineTest, NoCacheOptionBypassesTheCache) {
  options_.use_cache = false;
  SweepEngine engine(options_);
  engine.run(smallGrid());
  const auto again = engine.run(smallGrid());
  for (const SweepResult& r : again) EXPECT_FALSE(r.from_cache);
}

TEST_F(SweepEngineTest, StrictPolicyRethrowsJobException) {
  // The pre-PR5 contract, preserved behind FailurePolicy::strict.
  options_.failures.strict = true;
  SweepEngine engine(options_);
  std::vector<JobSpec> jobs = smallGrid();
  jobs.push_back(microbenchJob(PlatformId::kRocket1, "NoSuchKernel", 0.05));
  EXPECT_THROW(engine.run(jobs), std::out_of_range);
}

TEST_F(SweepEngineTest, StrictPolicyUnknownOverrideKeyThrows) {
  options_.failures.strict = true;
  SweepEngine engine(options_);
  JobSpec job = microbenchJob(PlatformId::kRocket1, "MM", 0.05);
  job.overrides.set("l2.bankz", "4");  // typo must not be ignored
  EXPECT_THROW(engine.runOne(job), std::invalid_argument);
}

TEST_F(SweepEngineTest, DefaultPolicyIsolatesAFailingJob) {
  SweepEngine engine(options_);
  std::vector<JobSpec> jobs = smallGrid();
  jobs.push_back(microbenchJob(PlatformId::kRocket1, "NoSuchKernel", 0.05));

  RunReport report;
  const auto results = engine.run(jobs, &report);

  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(results[i].outcome, JobOutcome::kOk) << results[i].label;
    EXPECT_GT(results[i].result.cycles, 0u);
  }
  EXPECT_EQ(results[3].outcome, JobOutcome::kFailed);
  EXPECT_FALSE(results[3].error.empty());
  EXPECT_FALSE(results[3].ok());

  // Every job is accounted for, exactly once.
  EXPECT_EQ(report.total, 4u);
  EXPECT_EQ(report.ok, 3u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.timed_out, 0u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_FALSE(report.allOk());
  ASSERT_EQ(report.failed_labels.size(), 1u);
  EXPECT_EQ(report.failed_labels[0], results[3].label);
  EXPECT_NE(report.summary().find("3/4 ok"), std::string::npos);
  EXPECT_NE(report.summary().find("1 failed"), std::string::npos);
}

TEST_F(SweepEngineTest, UnknownOverrideKeyFailsWithoutRetry) {
  // A spec that cannot be fingerprinted is a configuration error: no
  // retries (attempts stays 0), no quarantine entry, outcome kFailed.
  SweepEngine engine(options_);
  JobSpec job = microbenchJob(PlatformId::kRocket1, "MM", 0.05);
  job.overrides.set("l2.bankz", "4");
  const SweepResult r = engine.runOne(job);
  EXPECT_EQ(r.outcome, JobOutcome::kFailed);
  EXPECT_EQ(r.attempts, 0u);
  EXPECT_TRUE(r.fingerprint.empty());
  EXPECT_NE(r.error.find("l2.bankz"), std::string::npos);
  EXPECT_EQ(engine.quarantine().size(), 0u);
}

// Log-capture plumbing for the degraded-cache test (LogSink is a plain
// function pointer, so the buffer has to be a global).
std::vector<std::string>* g_captured_logs = nullptr;

void captureLog(LogLevel, const std::string& msg) {
  if (g_captured_logs != nullptr) g_captured_logs->push_back(msg);
}

TEST_F(SweepEngineTest, UnwritableCacheDegradesToCacheOffWithOneWarning) {
  // Park the cache directory under a regular file so it cannot be created
  // (works even when the test runs as root, unlike permission bits).
  const fs::path blocker = cache_dir_.parent_path() /
                           (cache_dir_.filename().string() + ".blocker");
  std::ofstream(blocker.string()) << "not a directory";
  options_.cache_dir = (blocker / "cache").string();

  std::vector<std::string> logs;
  g_captured_logs = &logs;
  setLogSink(captureLog);
  const LogLevel old_level = logLevel();
  setLogLevel(LogLevel::kWarn);

  SweepEngine engine(options_);

  setLogLevel(old_level);
  resetLogSink();
  g_captured_logs = nullptr;
  fs::remove(blocker);

  // Degraded to cache-off with exactly one warning — and the run proceeds.
  EXPECT_FALSE(engine.options().use_cache);
  std::size_t warnings = 0;
  for (const std::string& msg : logs) {
    if (msg.find("not writable") != std::string::npos) ++warnings;
  }
  EXPECT_EQ(warnings, 1u);

  const auto results = engine.run(smallGrid());
  for (const SweepResult& r : results) {
    EXPECT_EQ(r.outcome, JobOutcome::kOk);
    EXPECT_FALSE(r.from_cache);
  }
}

TEST_F(SweepEngineTest, PolicySignatureNamesPolicyAndFaultPlan) {
  options_.failures.max_retries = 3;
  options_.failures.timeout_seconds = 2.5;
  options_.faults = FaultPlan::fromSpec("throw=0.25,seed=9");
  SweepEngine engine(options_);
  const std::string sig = engine.policySignature();
  EXPECT_NE(sig.find("retries=3"), std::string::npos);
  EXPECT_NE(sig.find("timeout=2.5s"), std::string::npos);
  EXPECT_NE(sig.find("quarantine=on"), std::string::npos);
  EXPECT_NE(sig.find("seed=9"), std::string::npos);
  EXPECT_NE(sig.find("throw=0.25"), std::string::npos);

  FailurePolicy strict;
  strict.strict = true;
  EXPECT_EQ(strict.signature(), "strict");
}

TEST(SweepCliTest, ParsesJobsAndCacheFlags) {
  const char* argv[] = {"bench", "--jobs", "8", "--no-cache", "--csv",
                        "extra"};
  const SweepCli cli =
      SweepCli::parse(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.options.workers, 8u);
  EXPECT_FALSE(cli.options.use_cache);
  EXPECT_TRUE(cli.csv);
  ASSERT_EQ(cli.rest.size(), 1u);
  EXPECT_EQ(cli.rest[0], "extra");

  const char* argv2[] = {"bench", "--jobs=3"};
  EXPECT_EQ(SweepCli::parse(2, const_cast<char**>(argv2)).options.workers,
            3u);
}

}  // namespace
}  // namespace bridge
