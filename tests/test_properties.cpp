// Property-based tests: invariants that must hold across parameter sweeps,
// expressed with parameterized gtest suites.
#include <gtest/gtest.h>

#include <set>

#include "cache/cache.h"
#include "core/inorder.h"
#include "core/ooo.h"
#include "dram/controller.h"
#include "dram/timings.h"
#include "sim/rng.h"
#include "trace/kernel.h"

namespace bridge {
namespace {

// ---------------------------------------------------------------------
// Cache invariants over random geometries and access streams.
// ---------------------------------------------------------------------

struct CacheGeomCase {
  unsigned sets;
  unsigned ways;
  ReplacementPolicy repl;
};

class CacheProperty : public ::testing::TestWithParam<CacheGeomCase> {};

TEST_P(CacheProperty, OccupancyNeverExceedsCapacityAndRefsAreStable) {
  const CacheGeomCase geom = GetParam();
  SetAssocCache c({geom.sets, geom.ways, geom.repl}, 42);
  Xorshift64Star rng(geom.sets * 131 + geom.ways);

  std::set<Addr> resident;
  for (int i = 0; i < 20000; ++i) {
    const Addr line = rng.nextBelow(4 * geom.sets * geom.ways) * kLineBytes;
    const bool store = rng.nextBool(0.3);
    const bool was_present = c.probe(line);
    const CacheAccess a = c.access(line, store);
    EXPECT_EQ(a.hit, was_present);
    EXPECT_TRUE(c.probe(line));  // access installs
    resident.insert(lineAddr(line));
    if (a.writeback) {
      // A victim must have been resident previously and distinct.
      EXPECT_NE(a.victim_line, lineAddr(line));
      EXPECT_FALSE(c.probe(a.victim_line));
    }
  }
  // Count resident lines by probing: cannot exceed capacity.
  std::size_t count = 0;
  for (const Addr line : resident) {
    if (c.probe(line)) ++count;
  }
  EXPECT_LE(count, std::size_t{geom.sets} * geom.ways);
}

TEST_P(CacheProperty, HitPlusMissEqualsAccesses) {
  const CacheGeomCase geom = GetParam();
  SetAssocCache c({geom.sets, geom.ways, geom.repl}, 7);
  Xorshift64Star rng(99);
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    c.access(rng.nextBelow(1 << 16), false);
  }
  EXPECT_EQ(c.hits() + c.misses(), static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(CacheGeomCase{1, 1, ReplacementPolicy::kLru},
                      CacheGeomCase{1, 8, ReplacementPolicy::kLru},
                      CacheGeomCase{16, 2, ReplacementPolicy::kLru},
                      CacheGeomCase{64, 8, ReplacementPolicy::kLru},
                      CacheGeomCase{64, 8, ReplacementPolicy::kRandom},
                      CacheGeomCase{256, 4, ReplacementPolicy::kRandom},
                      CacheGeomCase{1024, 16, ReplacementPolicy::kLru}));

// ---------------------------------------------------------------------
// DRAM: completion monotonicity and bandwidth ceiling across presets.
// ---------------------------------------------------------------------

class DramProperty
    : public ::testing::TestWithParam<DramTimings> {};

TEST_P(DramProperty, CompletionAfterArrivalAndDeterministic) {
  DramController a(GetParam(), 2.0);
  DramController b(GetParam(), 2.0);
  Xorshift64Star rng(5);
  Cycle t = 0;
  for (int i = 0; i < 2000; ++i) {
    const Addr line = rng.nextBelow(1 << 20) * kLineBytes;
    const bool write = rng.nextBool(0.3);
    t += rng.nextBelow(20);
    const Cycle ca = write ? a.write(line, t) : a.read(line, t);
    const Cycle cb = write ? b.write(line, t) : b.read(line, t);
    EXPECT_GT(ca, t);
    EXPECT_EQ(ca, cb);  // determinism
  }
}

TEST_P(DramProperty, BusUtilizationBounded) {
  DramController c(GetParam(), 2.0);
  Xorshift64Star rng(11);
  Cycle t = 0;
  Cycle last = 0;
  for (int i = 0; i < 5000; ++i) {
    last = c.read(rng.nextBelow(1 << 18) * kLineBytes, t);
    ++t;
  }
  EXPECT_LE(c.busUtilization(last), 1.0);
  EXPECT_GT(c.busUtilization(last), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Presets, DramProperty,
                         ::testing::Values(ddr3_2000_quadrank(), ddr4_3200(),
                                           lpddr4_2666(),
                                           fixedLatency(50.0)));

// ---------------------------------------------------------------------
// Cores: IPC bounds and monotonicity in resources.
// ---------------------------------------------------------------------

MemSysParams propMem() {
  MemSysParams p;
  p.l1i = {64, 8, 1, 1};
  p.l1d = {64, 8, 2, 4};
  p.l2 = {1024, 8, 14, 2, 2, 8};
  p.bus = {128, 1};
  p.dram = fixedLatency(80.0);
  p.dram_channels = 1;
  p.freq_ghz = 1.0;
  return p;
}

TraceSourcePtr mixedTrace(std::uint64_t seed, std::uint64_t iters) {
  KernelBuilder b("mixed");
  const int ld = b.addrGen(
      std::make_unique<RandomGen>(0x100000, 1 << 18, 8, seed));
  const int st = b.addrGen(
      std::make_unique<StrideGen>(0x400000, 8, 1 << 16));
  const int br = b.branchGen(std::make_unique<RandomBranchGen>(0.7, seed));
  b.segment(iters)
      .add(load(intReg(5), ld))
      .add(alu(intReg(6), intReg(5)))
      .add(fma(fpReg(1), fpReg(1), fpReg(2), fpReg(3)))
      .add(store(st, intReg(6)))
      .add(branch(br, intReg(6)));
  return b.build();
}

class OooWidthProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(OooWidthProperty, IpcNeverExceedsDecodeWidth) {
  OooParams p = largeBoomParams();
  p.decode_width = GetParam();
  StatRegistry stats;
  MemoryHierarchy mem(1, propMem(), &stats);
  OooCore core(0, p, &mem, &stats, "c");
  auto t = mixedTrace(3, 4000);
  MicroOp op;
  while (t->next(&op)) core.consume(op);
  core.drain();
  EXPECT_LE(core.ipc(), static_cast<double>(p.decode_width) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, OooWidthProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

class RobSizeProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RobSizeProperty, BiggerRobNeverSlowerOnIndependentMisses) {
  auto run = [](unsigned rob) {
    OooParams p = largeBoomParams();
    p.rob = rob;
    StatRegistry stats;
    MemoryHierarchy mem(1, propMem(), &stats);
    OooCore core(0, p, &mem, &stats, "c");
    MicroOp ld;
    ld.cls = OpClass::kLoad;
    ld.pc = 0x400;
    ld.mem_size = 8;
    for (int i = 0; i < 1500; ++i) {
      ld.dst = intReg(5 + (i % 16));
      ld.addr = 0x100000 + static_cast<Addr>(i) * 4096;
      core.consume(ld);
    }
    return core.drain();
  };
  const unsigned rob = GetParam();
  EXPECT_LE(run(rob * 2), run(rob) + 10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RobSizeProperty,
                         ::testing::Values(8u, 16u, 32u, 64u));

class InOrderWidthProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(InOrderWidthProperty, IpcBoundedByIssueWidth) {
  InOrderParams p;
  p.issue_width = GetParam();
  StatRegistry stats;
  MemoryHierarchy mem(1, propMem(), &stats);
  InOrderCore core(0, p, &mem, &stats, "c");
  auto t = mixedTrace(17, 4000);
  MicroOp op;
  while (t->next(&op)) core.consume(op);
  core.drain();
  EXPECT_LE(core.ipc(), static_cast<double>(p.issue_width) + 1e-9);
  EXPECT_GT(core.ipc(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Widths, InOrderWidthProperty,
                         ::testing::Values(1u, 2u));

// Core local clocks never move backward while consuming any stream.
TEST(CoreMonotonicity, ClocksNeverRegress) {
  StatRegistry stats;
  MemoryHierarchy mem(2, propMem(), &stats);
  InOrderCore in(0, InOrderParams{}, &mem, &stats, "in");
  OooCore ooo(1, largeBoomParams(), &mem, &stats, "ooo");
  auto t1 = mixedTrace(23, 3000);
  auto t2 = mixedTrace(29, 3000);
  MicroOp op;
  Cycle prev_in = 0, prev_ooo = 0;
  while (t1->next(&op)) {
    in.consume(op);
    EXPECT_GE(in.now(), prev_in);
    prev_in = in.now();
  }
  while (t2->next(&op)) {
    ooo.consume(op);
    EXPECT_GE(ooo.now(), prev_ooo);
    prev_ooo = ooo.now();
  }
}

}  // namespace
}  // namespace bridge
