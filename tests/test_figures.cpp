#include "harness/figures.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bridge {
namespace {

// Figures are exercised at a reduced scale here; the bench binaries run the
// full-scale versions.
constexpr double kTestScale = 0.03;

TEST(Figures, Fig1ShapeAndLabels) {
  const Figure fig = computeFig1(kTestScale);
  ASSERT_EQ(fig.series.size(), 2u);
  EXPECT_EQ(fig.series[0].label, "BananaPiSim");
  EXPECT_EQ(fig.series[1].label, "FastBananaPiSim");
  EXPECT_EQ(fig.series[0].points.size(), 39u);  // CRm excluded
  for (const auto& [kernel, value] : fig.series[0].points) {
    EXPECT_GT(value, 0.0) << kernel;
    EXPECT_LT(value, 10.0) << kernel;
  }
}

TEST(Figures, Fig4bHasOneAndFourRankSeries) {
  const Figure fig = computeFig4b(kTestScale);
  ASSERT_EQ(fig.series.size(), 2u);
  EXPECT_EQ(fig.series[0].points.size(), 4u);  // CG EP IS MG
  EXPECT_EQ(fig.series[0].points[1].first, "EP");
}

TEST(Figures, Fig5HasBothPlatformPairs) {
  const Figure fig = computeFig5(0.2);
  ASSERT_EQ(fig.series.size(), 2u);
  EXPECT_EQ(fig.series[0].points.size(), 3u);  // 1, 2, 4 ranks
  for (const FigureSeries& s : fig.series) {
    for (const auto& [label, v] : s.points) {
      EXPECT_GT(v, 0.0);
    }
  }
}

TEST(Figures, RenderFigureProducesAlignedRows) {
  Figure fig;
  fig.title = "T";
  fig.metric = "m";
  fig.series.push_back({"A", {{"x", 1.0}, {"y", 2.0}}});
  fig.series.push_back({"B", {{"x", 3.0}, {"y", 4.0}}});
  std::ostringstream os;
  renderFigure(os, fig);
  const std::string out = os.str();
  EXPECT_NE(out.find("T"), std::string::npos);
  EXPECT_NE(out.find("1.000"), std::string::npos);
  EXPECT_NE(out.find("4.000"), std::string::npos);
}

TEST(Figures, RenderCsvRoundTrips) {
  Figure fig;
  fig.title = "T";
  fig.series.push_back({"A", {{"x", 1.5}}});
  std::ostringstream os;
  renderCsv(os, fig);
  EXPECT_EQ(os.str(), "label,A\nx,1.5\n");
}

TEST(Figures, Table1ListsAllKernels) {
  std::ostringstream os;
  renderTable1(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Cca"), std::string::npos);
  EXPECT_NE(out.find("MM_st"), std::string::npos);
  EXPECT_NE(out.find("excluded"), std::string::npos);  // CRm marker
}

TEST(Figures, Table4ListsFireSimModels) {
  std::ostringstream os;
  renderTable4(os);
  const std::string out = os.str();
  for (const char* name :
       {"Rocket1", "Rocket2", "SmallBoom", "MediumBoom", "LargeBoom"}) {
    EXPECT_NE(out.find(name), std::string::npos) << name;
  }
}

TEST(Figures, Table5ListsBothPairs) {
  std::ostringstream os;
  renderTable5(os);
  const std::string out = os.str();
  for (const char* name :
       {"BananaPiHw", "BananaPiSim", "MilkVHw", "MilkVSim", "lpddr4",
        "ddr3"}) {
    EXPECT_NE(out.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace bridge
