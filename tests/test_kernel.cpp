#include "trace/kernel.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace bridge {
namespace {

std::vector<MicroOp> drain(TraceSource& t) {
  std::vector<MicroOp> ops;
  MicroOp op;
  while (t.next(&op)) ops.push_back(op);
  return ops;
}

TEST(KernelBuilder, SegmentEmitsBodyTimesIterationsPlusLoopBranches) {
  KernelBuilder b("k");
  b.segment(10).add(alu(intReg(5))).add(alu(intReg(6)));
  const auto ops = drain(*b.build());
  // 2 body ops + 1 back-edge per iteration.
  ASSERT_EQ(ops.size(), 30u);
  EXPECT_EQ(ops[0].cls, OpClass::kIntAlu);
  EXPECT_EQ(ops[2].cls, OpClass::kBranch);
}

TEST(KernelBuilder, LoopBranchTakenExceptLastIteration) {
  KernelBuilder b("k");
  b.segment(3).add(alu(intReg(5)));
  const auto ops = drain(*b.build());
  std::vector<bool> directions;
  for (const MicroOp& op : ops) {
    if (op.cls == OpClass::kBranch) directions.push_back(op.taken);
  }
  ASSERT_EQ(directions.size(), 3u);
  EXPECT_TRUE(directions[0]);
  EXPECT_TRUE(directions[1]);
  EXPECT_FALSE(directions[2]);
}

TEST(KernelBuilder, SingleIterationSkipsLoopBranch) {
  KernelBuilder b("k");
  b.segment(1).add(alu(intReg(5)));
  const auto ops = drain(*b.build());
  ASSERT_EQ(ops.size(), 1u);
}

TEST(KernelBuilder, LoopBranchTargetsSegmentTop) {
  KernelBuilder b("k");
  b.segment(2).add(alu(intReg(5)));
  const auto ops = drain(*b.build());
  const MicroOp& back_edge = ops[1];
  ASSERT_EQ(back_edge.cls, OpClass::kBranch);
  EXPECT_EQ(back_edge.addr, ops[0].pc);
}

TEST(KernelBuilder, MemOpsDrawFromAddressGen) {
  KernelBuilder b("k");
  const int g = b.addrGen(std::make_unique<StrideGen>(0x1000, 8, 1024));
  b.segment(3).add(load(intReg(5), g));
  const auto ops = drain(*b.build());
  std::vector<Addr> addrs;
  for (const MicroOp& op : ops) {
    if (op.cls == OpClass::kLoad) addrs.push_back(op.addr);
  }
  ASSERT_EQ(addrs.size(), 3u);
  EXPECT_EQ(addrs[0], 0x1000u);
  EXPECT_EQ(addrs[1], 0x1008u);
  EXPECT_EQ(addrs[2], 0x1010u);
}

TEST(KernelBuilder, BranchTemplateUsesBranchGen) {
  KernelBuilder b("k");
  const int g = b.branchGen(std::make_unique<AlternatingBranchGen>(1));
  Segment& seg = b.segment(4);
  seg.loop_branch = false;
  seg.add(branch(g));
  const auto ops = drain(*b.build());
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_TRUE(ops[0].taken);
  EXPECT_FALSE(ops[1].taken);
  EXPECT_TRUE(ops[2].taken);
}

TEST(KernelBuilder, CallRetLinkedThroughShadowStack) {
  KernelBuilder b("k");
  b.segment(5).add(call()).add(alu(intReg(5))).add(ret());
  const auto ops = drain(*b.build());
  for (std::size_t i = 0; i + 2 < ops.size(); i += 4) {
    const MicroOp& c = ops[i];
    const MicroOp& r = ops[i + 2];
    if (c.cls != OpClass::kCall) break;
    EXPECT_EQ(r.cls, OpClass::kRet);
    EXPECT_EQ(r.addr, c.pc + 4);
  }
}

TEST(KernelBuilder, NestedCallsUnwindInLifoOrder) {
  KernelBuilder b("k");
  b.segment(3).add(call());   // 3 nested calls
  b.segment(3).add(ret());    // then 3 returns
  const auto ops = drain(*b.build());
  std::vector<Addr> call_pcs, ret_targets;
  for (const MicroOp& op : ops) {
    if (op.cls == OpClass::kCall) call_pcs.push_back(op.pc);
    if (op.cls == OpClass::kRet) ret_targets.push_back(op.addr);
  }
  ASSERT_EQ(call_pcs.size(), 3u);
  ASSERT_EQ(ret_targets.size(), 3u);
  EXPECT_EQ(ret_targets[0], call_pcs[2] + 4);
  EXPECT_EQ(ret_targets[2], call_pcs[0] + 4);
}

TEST(KernelBuilder, CodeFootprintRotatesPcs) {
  KernelBuilder b("k");
  Segment& seg = b.segment(1000);
  seg.code_footprint = 4096;
  seg.add(alu(intReg(5)));
  const auto ops = drain(*b.build());
  std::set<Addr> lines;
  for (const MicroOp& op : ops) lines.insert(lineAddr(op.pc));
  EXPECT_GT(lines.size(), 32u);  // sweeps many i-cache lines
}

TEST(KernelBuilder, CompactSegmentsShareFewPcLines) {
  KernelBuilder b("k");
  b.segment(1000).add(alu(intReg(5))).add(alu(intReg(6)));
  const auto ops = drain(*b.build());
  std::set<Addr> lines;
  for (const MicroOp& op : ops) lines.insert(lineAddr(op.pc));
  EXPECT_LE(lines.size(), 2u);
}

TEST(KernelBuilder, IndirectJumpRotatesTargets) {
  KernelBuilder b("k");
  Segment& seg = b.segment(30);
  seg.loop_branch = false;
  seg.add(indirectJump(/*targets=*/4, /*period=*/3));
  const auto ops = drain(*b.build());
  std::map<Addr, int> target_counts;
  for (const MicroOp& op : ops) ++target_counts[op.addr];
  EXPECT_EQ(target_counts.size(), 4u);
  // Period 3: consecutive triples share a target.
  EXPECT_EQ(ops[0].addr, ops[1].addr);
  EXPECT_EQ(ops[1].addr, ops[2].addr);
  EXPECT_NE(ops[2].addr, ops[3].addr);
}

TEST(KernelBuilder, MultipleSegmentsRunInOrder) {
  KernelBuilder b("k");
  b.segment(2).add(alu(intReg(5)));
  b.segment(2).add(fadd(fpReg(1), fpReg(1), fpReg(2)));
  const auto ops = drain(*b.build());
  // seg0: (alu + br) x2, then seg1: (fadd + br) x2.
  ASSERT_EQ(ops.size(), 8u);
  EXPECT_EQ(ops[0].cls, OpClass::kIntAlu);
  EXPECT_EQ(ops[4].cls, OpClass::kFpAdd);
}

TEST(SequenceTrace, ConcatenatesPiecesAndLiterals) {
  SequenceTrace seq("s");
  KernelBuilder b1("a");
  b1.segment(2).add(alu(intReg(5)));
  seq.append(b1.build());
  seq.appendOp(makeMpiOp(MpiKind::kBarrier, 0, 0));
  KernelBuilder b2("b");
  b2.segment(1).add(alu(intReg(6)));
  seq.append(b2.build());

  const auto ops = drain(seq);
  ASSERT_EQ(ops.size(), 6u);  // (alu+br)x2, mpi, alu
  EXPECT_EQ(ops[4].cls, OpClass::kMpi);
  EXPECT_EQ(ops[4].mpi.kind, MpiKind::kBarrier);
  EXPECT_EQ(ops[5].cls, OpClass::kIntAlu);
}

TEST(MakeMpiOp, FillsFields) {
  const MicroOp op = makeMpiOp(MpiKind::kSend, 3, 1024, 7);
  EXPECT_EQ(op.cls, OpClass::kMpi);
  EXPECT_EQ(op.mpi.kind, MpiKind::kSend);
  EXPECT_EQ(op.mpi.peer, 3);
  EXPECT_EQ(op.mpi.bytes, 1024u);
  EXPECT_EQ(op.mpi.tag, 7);
}

}  // namespace
}  // namespace bridge
