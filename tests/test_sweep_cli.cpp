#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sweep/sweep.h"

namespace bridge {
namespace {

bool parseOk(const std::vector<std::string>& args, SweepCli* out) {
  std::string error;
  return SweepCli::tryParse(args, out, &error);
}

std::string parseError(const std::vector<std::string>& args) {
  SweepCli cli;
  std::string error;
  EXPECT_FALSE(SweepCli::tryParse(args, &cli, &error));
  return error;
}

TEST(SweepCliTest, ParsesJobsCacheCsvAndRest) {
  SweepCli cli;
  ASSERT_TRUE(parseOk({"--jobs", "8", "--no-cache", "--csv", "extra.cfg"},
                      &cli));
  EXPECT_EQ(cli.options.workers, 8u);
  EXPECT_FALSE(cli.options.use_cache);
  EXPECT_TRUE(cli.csv);
  EXPECT_EQ(cli.rest, (std::vector<std::string>{"extra.cfg"}));

  ASSERT_TRUE(parseOk({"--jobs=3"}, &cli));
  EXPECT_EQ(cli.options.workers, 3u);
}

TEST(SweepCliTest, RejectsZeroAndNegativeJobs) {
  EXPECT_NE(parseError({"--jobs", "0"}), "");
  EXPECT_NE(parseError({"--jobs", "-4"}), "");
  EXPECT_NE(parseError({"--jobs=0"}), "");
  EXPECT_NE(parseError({"--jobs=-1"}), "");
}

TEST(SweepCliTest, RejectsGarbageJobs) {
  // Trailing junk must not silently parse as its numeric prefix.
  EXPECT_NE(parseError({"--jobs", "4abc"}), "");
  EXPECT_NE(parseError({"--jobs", "abc"}), "");
  EXPECT_NE(parseError({"--jobs", ""}), "");
  EXPECT_NE(parseError({"--jobs", " 4"}), "");
  EXPECT_NE(parseError({"--jobs", "0x8"}), "");
  EXPECT_NE(parseError({"--jobs"}), "");  // missing value
  // Absurd worker counts are refused rather than spawning a machine-killer.
  EXPECT_NE(parseError({"--jobs", "99999999999999999999"}), "");
  EXPECT_NE(parseError({"--jobs", "1000001"}), "");
}

TEST(SweepCliTest, ErrorMessageNamesTheBadValue) {
  EXPECT_NE(parseError({"--jobs", "many"}).find("'many'"), std::string::npos);
}

TEST(SweepCliTest, ParsesFailurePolicyFlags) {
  SweepCli cli;
  ASSERT_TRUE(parseOk({"--strict"}, &cli));
  EXPECT_TRUE(cli.options.failures.strict);

  ASSERT_TRUE(parseOk({"--retries", "0", "--timeout", "2.5"}, &cli));
  EXPECT_FALSE(cli.options.failures.strict);
  EXPECT_EQ(cli.options.failures.max_retries, 0u);
  EXPECT_DOUBLE_EQ(cli.options.failures.timeout_seconds, 2.5);

  ASSERT_TRUE(parseOk({"--retries=5", "--timeout=0.25"}, &cli));
  EXPECT_EQ(cli.options.failures.max_retries, 5u);
  EXPECT_DOUBLE_EQ(cli.options.failures.timeout_seconds, 0.25);
}

TEST(SweepCliTest, RejectsBadFailurePolicyValues) {
  EXPECT_NE(parseError({"--retries", "-1"}), "");
  EXPECT_NE(parseError({"--retries", "two"}), "");
  EXPECT_NE(parseError({"--retries"}), "");
  EXPECT_NE(parseError({"--timeout", "0"}), "");
  EXPECT_NE(parseError({"--timeout", "-3"}), "");
  EXPECT_NE(parseError({"--timeout", "5s"}), "");
  EXPECT_NE(parseError({"--timeout"}), "");
}

TEST(ParsePositiveIntTest, AcceptsRangeBounds) {
  EXPECT_EQ(parsePositiveInt("1").value_or(0), 1);
  EXPECT_EQ(parsePositiveInt("1000000").value_or(0), 1'000'000);
  EXPECT_FALSE(parsePositiveInt("0").has_value());
  EXPECT_FALSE(parsePositiveInt("1000001").has_value());
  EXPECT_FALSE(parsePositiveInt("+5").has_value());
}

}  // namespace
}  // namespace bridge
