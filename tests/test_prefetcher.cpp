#include "cache/prefetcher.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

PrefetcherParams enabled(unsigned degree = 2) {
  PrefetcherParams p;
  p.enabled = true;
  p.degree = degree;
  p.min_confidence = 2;
  return p;
}

TEST(StridePrefetcher, DisabledIssuesNothing) {
  PrefetcherParams p;
  p.enabled = false;
  StridePrefetcher pf(p);
  std::vector<Addr> out;
  for (int i = 0; i < 100; ++i) pf.observe(0x400, 0x1000 + i * 64, &out);
  EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcher, LocksOntoLineStride) {
  StridePrefetcher pf(enabled());
  std::vector<Addr> out;
  for (int i = 0; i < 8; ++i) pf.observe(0x400, 0x1000 + i * 64, &out);
  ASSERT_FALSE(out.empty());
  // Candidates are ahead of the stream and line-aligned.
  for (const Addr a : out) {
    EXPECT_EQ(a % 64, 0u);
    EXPECT_GT(a, 0x1000u);
  }
}

TEST(StridePrefetcher, NeedsConfidenceBeforeIssuing) {
  StridePrefetcher pf(enabled());
  std::vector<Addr> out;
  pf.observe(0x400, 0x1000, &out);   // first touch: trains entry
  pf.observe(0x400, 0x1040, &out);   // first stride observation
  EXPECT_TRUE(out.empty());
  pf.observe(0x400, 0x1080, &out);   // confidence reaches 2
  EXPECT_FALSE(out.empty());
}

TEST(StridePrefetcher, StrideChangeResetsConfidence) {
  StridePrefetcher pf(enabled());
  std::vector<Addr> out;
  for (int i = 0; i < 5; ++i) pf.observe(0x400, 0x1000 + i * 64, &out);
  out.clear();
  pf.observe(0x400, 0x9000, &out);  // wild jump
  EXPECT_TRUE(out.empty());
  pf.observe(0x400, 0x9100, &out);  // new stride, conf 1
  EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcher, SubLineStridesCoalesce) {
  // 8-byte stride: only one prefetch per new line, not per access.
  StridePrefetcher pf(enabled(8));
  std::vector<Addr> out;
  for (int i = 0; i < 4; ++i) pf.observe(0x400, 0x1000 + i * 8, &out);
  for (const Addr a : out) EXPECT_EQ(a % 64, 0u);
  // degree 8 x 8B = 64B ahead: at most one distinct line per observe call.
  EXPECT_LE(out.size(), 4u);
}

TEST(StridePrefetcher, NegativeStrideSupported) {
  StridePrefetcher pf(enabled());
  std::vector<Addr> out;
  for (int i = 0; i < 6; ++i) pf.observe(0x400, 0x9000 - i * 64, &out);
  ASSERT_FALSE(out.empty());
  EXPECT_LT(out.back(), 0x9000u);
}

TEST(StridePrefetcher, DistinctPcsTrackIndependently) {
  StridePrefetcher pf(enabled());
  std::vector<Addr> out;
  for (int i = 0; i < 6; ++i) {
    pf.observe(0x400, 0x1000 + i * 64, &out);
    pf.observe(0x404, 0x20000 + i * 128, &out);
  }
  EXPECT_GT(pf.issued(), 0u);
}

}  // namespace
}  // namespace bridge
