#include "uop/uop.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

TEST(OpClass, PredicatesPartitionClasses) {
  EXPECT_TRUE(isMemOp(OpClass::kLoad));
  EXPECT_TRUE(isMemOp(OpClass::kStore));
  EXPECT_FALSE(isMemOp(OpClass::kIntAlu));

  EXPECT_TRUE(isCtrlOp(OpClass::kBranch));
  EXPECT_TRUE(isCtrlOp(OpClass::kJump));
  EXPECT_TRUE(isCtrlOp(OpClass::kCall));
  EXPECT_TRUE(isCtrlOp(OpClass::kRet));
  EXPECT_FALSE(isCtrlOp(OpClass::kLoad));

  EXPECT_TRUE(isFpOp(OpClass::kFpAdd));
  EXPECT_TRUE(isFpOp(OpClass::kFpCvt));
  EXPECT_FALSE(isFpOp(OpClass::kIntMul));

  EXPECT_TRUE(isLongLatency(OpClass::kIntDiv));
  EXPECT_TRUE(isLongLatency(OpClass::kFpDiv));
  EXPECT_TRUE(isLongLatency(OpClass::kFpSqrt));
  EXPECT_FALSE(isLongLatency(OpClass::kFpMul));
}

TEST(OpClass, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (unsigned i = 0; i < kNumOpClasses; ++i) {
    const auto name = opClassName(static_cast<OpClass>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "invalid");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), kNumOpClasses);
}

TEST(Registers, HelpersMapIntoDisjointBanks) {
  EXPECT_EQ(intReg(0), 0);
  EXPECT_EQ(intReg(31), 31);
  EXPECT_EQ(fpReg(0), 32);
  EXPECT_EQ(fpReg(31), 63);
  // Wrap instead of overflow.
  EXPECT_EQ(intReg(32), 0);
  EXPECT_EQ(fpReg(32), 32);
}

TEST(LatencyTable, DefaultsAndOverrides) {
  LatencyTable lat;
  EXPECT_EQ(lat.of(OpClass::kIntAlu), 1u);
  EXPECT_GT(lat.of(OpClass::kIntDiv), lat.of(OpClass::kIntMul));
  lat.set(OpClass::kIntMul, 3);
  EXPECT_EQ(lat.of(OpClass::kIntMul), 3u);
}

TEST(Types, LineAddrMasksLowBits) {
  EXPECT_EQ(lineAddr(0x1000), 0x1000u);
  EXPECT_EQ(lineAddr(0x103F), 0x1000u);
  EXPECT_EQ(lineAddr(0x1040), 0x1040u);
}

TEST(Types, CycleSecondConversions) {
  EXPECT_DOUBLE_EQ(cyclesToSeconds(1'600'000'000, 1.6), 1.0);
  EXPECT_EQ(nsToCycles(10.0, 2.0), 20u);
  EXPECT_EQ(nsToCycles(0.0, 2.0), 0u);
  // Rounding to nearest.
  EXPECT_EQ(nsToCycles(1.3, 1.0), 1u);
  EXPECT_EQ(nsToCycles(1.6, 1.0), 2u);
}

TEST(MicroOp, DefaultIsInertNop) {
  MicroOp op;
  EXPECT_EQ(op.cls, OpClass::kNop);
  EXPECT_EQ(op.dst, kNoReg);
  EXPECT_EQ(op.mpi.kind, MpiKind::kNone);
}

}  // namespace
}  // namespace bridge
