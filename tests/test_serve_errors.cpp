// Serve error-path tests: the refusal and failure branches the happy-path
// suites never touch. Framing rejects oversized/malformed length prefixes
// (on both the codec and a live daemon connection), a malformed request
// frame gets an error response without killing the connection, hello
// refusals (bad role, v1 worker, policy mismatch), fail/complete/claim
// before a worker hello, a stale-lease `fail` after expiry, and a drain
// with no clients attached.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/worker.h"
#include "sweep/job.h"
#include "sweep/sweep.h"

namespace bridge::serve {
namespace {

namespace fs = std::filesystem;

class ServeErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("bridge-srverr-") + info->name() + "-" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string socketPath() const { return (dir_ / "d.sock").string(); }

  DaemonOptions daemonOptions() const {
    DaemonOptions options;
    options.socket_path = socketPath();
    options.sweep.workers = 2;
    options.sweep.use_cache = false;
    return options;
  }

  /// Raw connection to the daemon socket, or -1.
  static int rawConnect(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return -1;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  static bool writeAll(int fd, std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  static bool eventually(const std::function<bool()>& cond) {
    for (int spins = 0; spins < 5000; ++spins) {
      if (cond()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return cond();
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// Framing limits.

TEST_F(ServeErrorTest, FramingRejectsOversizedAndMalformedHeaders) {
  // The encoder refuses to build a frame the decoder would reject.
  EXPECT_THROW(encodeFrame(std::string(kMaxFramePayload + 1, 'x')),
               std::length_error);
  // A payload at exactly the cap is legal.
  EXPECT_NO_THROW(encodeFrame(std::string(kMaxFramePayload, 'x')));

  // Declared length above the cap: refused before any allocation.
  EXPECT_FALSE(decodeFrameHeader("01000001\n").has_value());  // 16 MiB + 1
  EXPECT_FALSE(decodeFrameHeader("ffffffff\n").has_value());
  // Malformed prefixes: non-hex, missing newline terminator, too short.
  EXPECT_FALSE(decodeFrameHeader("zzzzzzzz\n").has_value());
  EXPECT_FALSE(decodeFrameHeader("deadbeefX").has_value());
  EXPECT_FALSE(decodeFrameHeader("0a\n").has_value());
  EXPECT_FALSE(decodeFrameHeader("").has_value());
  // And the happy path still parses.
  const auto ok = decodeFrameHeader("0000002a\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, 0x2au);
}

TEST_F(ServeErrorTest, DaemonDropsAConnectionDeclaringAnOversizedFrame) {
  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const int fd = rawConnect(daemon.socketPath());
  ASSERT_GE(fd, 0);
  std::string payload, io_error;
  ASSERT_TRUE(recvFrame(fd, &payload, &io_error)) << io_error;  // hello

  // A garbage prefix declaring a 16 MiB + 1 payload: the daemon must fail
  // the read and close, never size an allocation from it.
  ASSERT_TRUE(writeAll(fd, "01000001\n"));
  EXPECT_FALSE(recvFrame(fd, &payload, &io_error));
  EXPECT_TRUE(io_error.empty()) << io_error;  // clean close, not an error
  ::close(fd);

  // The daemon survives the hostile connection and serves the next client.
  ServeClient client(daemon.socketPath());
  client.ping();
  EXPECT_GE(daemon.stats().connections, 2u);
}

TEST_F(ServeErrorTest, MalformedRequestFrameGetsATypedErrorThenTheBoot) {
  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const int fd = rawConnect(daemon.socketPath());
  ASSERT_GE(fd, 0);
  std::string payload, io_error;
  ASSERT_TRUE(recvFrame(fd, &payload, &io_error)) << io_error;  // hello

  // A well-framed but unparseable payload answers with a typed error —
  // the peer learns why — and then the protocol violator is dropped.
  ASSERT_TRUE(sendFrame(fd, "this is not a request", &io_error)) << io_error;
  ASSERT_TRUE(recvFrame(fd, &payload, &io_error)) << io_error;
  const auto response = responseFromJson(payload);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->kind, ServeResponse::Kind::kError);
  EXPECT_NE(response->message.find("malformed"), std::string::npos)
      << response->message;
  EXPECT_FALSE(recvFrame(fd, &payload, &io_error));  // connection dropped
  ::close(fd);

  // The daemon itself is unharmed: the next client is served normally.
  ServeClient client(daemon.socketPath());
  client.ping();
  EXPECT_EQ(client.stats().jobs, 0u);
}

// ---------------------------------------------------------------------------
// Hello refusals.

TEST_F(ServeErrorTest, HelloRejectsBadRoleV1WorkersAndPolicyMismatch) {
  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  // Unknown role: refused at the upgrade, client library re-raises.
  {
    ServeClient client(daemon.socketPath());
    EXPECT_THROW(client.negotiate("gardener", "", "x"), std::runtime_error);
  }
  // Worker with a wrong policy signature: refused before it can claim.
  {
    ServeClient client(daemon.socketPath());
    EXPECT_THROW(client.negotiate("worker", "retries=99,definitely=not", "w"),
                 std::runtime_error);
  }
  // A worker proposing the v1 version cannot hold leases. The client
  // library always proposes v2, so speak the frame raw.
  {
    const int fd = rawConnect(daemon.socketPath());
    ASSERT_GE(fd, 0);
    std::string payload, io_error;
    ASSERT_TRUE(recvFrame(fd, &payload, &io_error)) << io_error;  // hello
    ServeRequest hello;
    hello.kind = ServeRequest::Kind::kHello;
    hello.version = std::string(kProtocolVersion);
    hello.role = "worker";
    hello.policy = daemon.policySignature();
    hello.name = "v1-worker";
    ASSERT_TRUE(sendFrame(fd, requestToJson(hello), &io_error)) << io_error;
    ASSERT_TRUE(recvFrame(fd, &payload, &io_error)) << io_error;
    const auto response = responseFromJson(payload);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->kind, ServeResponse::Kind::kError);
    EXPECT_NE(response->message.find("cannot hold leases"), std::string::npos)
        << response->message;
    ::close(fd);
  }
  // A valid client negotiation still succeeds afterwards.
  ServeClient ok(daemon.socketPath());
  ok.negotiate("client", "", "healthy");
  EXPECT_EQ(ok.negotiatedVersion(), kProtocolVersionV2);
}

TEST_F(ServeErrorTest, LeaseVerbsRequireAWorkerHelloFirst) {
  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const int fd = rawConnect(daemon.socketPath());
  ASSERT_GE(fd, 0);
  std::string payload, io_error;
  ASSERT_TRUE(recvFrame(fd, &payload, &io_error)) << io_error;  // hello

  const auto expectError = [&](const ServeRequest& request,
                               const char* needle) {
    ASSERT_TRUE(sendFrame(fd, requestToJson(request), &io_error)) << io_error;
    ASSERT_TRUE(recvFrame(fd, &payload, &io_error)) << io_error;
    const auto response = responseFromJson(payload);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->kind, ServeResponse::Kind::kError);
    EXPECT_NE(response->message.find(needle), std::string::npos)
        << response->message;
  };

  ServeRequest claim;
  claim.kind = ServeRequest::Kind::kClaim;
  claim.max_jobs = 1;
  expectError(claim, "claim requires a worker hello");

  ServeRequest complete;
  complete.kind = ServeRequest::Kind::kComplete;
  complete.lease = 1;
  expectError(complete, "complete requires a worker hello");

  ServeRequest fail;
  fail.kind = ServeRequest::Kind::kFail;
  fail.lease = 1;
  fail.message = "imposter";
  expectError(fail, "fail requires a worker hello");
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Stale leases.

TEST_F(ServeErrorTest, StaleLeaseFailIsRejectedAfterExpiry) {
  DaemonOptions options = daemonOptions();
  options.lease_ms = 100;  // expire fast; the reaper re-admits locally
  SweepDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  ServeClient worker(daemon.socketPath());
  worker.negotiate("worker", daemon.policySignature(), "lazy-worker");

  // A fail against a lease that never existed is refused outright.
  std::string reason;
  EXPECT_FALSE(worker.failLease(999999, "no such lease", &reason));
  EXPECT_FALSE(reason.empty());

  // Submit one job and claim it — then sit on the lease until it expires.
  const JobSpec job = microbenchJob(PlatformId::kRocket1, "MM", 0.25);
  std::vector<SweepResult> results;
  std::thread client_thread([&] {
    ServeClient client(daemon.socketPath());
    results = client.run({job});
  });

  std::vector<LeaseGrant> grants;
  ASSERT_TRUE(eventually([&] {
    bool draining = false;
    auto g = worker.claim(1, &draining);
    if (!g.empty()) grants = std::move(g);
    return !grants.empty();
  })) << "worker never received a lease";

  // The reaper must expire the abandoned lease and re-admit the orphan so
  // the client still gets its result — from the daemon's own pool.
  ASSERT_TRUE(eventually([&] { return daemon.stats().leases_expired >= 1; }));
  client_thread.join();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());

  // The stale fail arrives after expiry: refused with a reason, and the
  // already-recovered result stands.
  reason.clear();
  EXPECT_FALSE(worker.failLease(grants[0].lease, "too late", &reason));
  EXPECT_FALSE(reason.empty());
  const ServeStats stats = daemon.stats();
  EXPECT_GE(stats.leases_expired, 1u);
  EXPECT_GE(stats.orphans_readmitted, 1u);
  EXPECT_EQ(stats.completed_remote, 0u);
}

// ---------------------------------------------------------------------------
// Drain.

TEST_F(ServeErrorTest, DrainWithNoClientsCompletesAndUnbindsPromptly) {
  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  ASSERT_GE(rawConnect(daemon.socketPath()), 0);  // it is really listening

  // No client ever sent a request: the drain must not wait for one.
  daemon.requestStop();
  daemon.join();

  // The socket no longer accepts; stats survive the shutdown.
  EXPECT_LT(rawConnect(socketPath()), 0);
  EXPECT_EQ(daemon.stats().jobs, 0u);
}

TEST_F(ServeErrorTest, ShutdownFrameFromAnIdleClientDrainsTheDaemon) {
  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  ServeClient client(daemon.socketPath());
  const RunReport report = client.shutdownDaemon();
  EXPECT_EQ(report.total, 0u);

  daemon.join();
  EXPECT_LT(rawConnect(socketPath()), 0);
}

TEST(ServeWorkerTest, ReportSummaryAndSocketResolution) {
  WorkerReport report;
  report.claimed = 3;
  report.completed = 2;
  report.failed = 1;
  EXPECT_EQ(report.summary(), "3 claimed, 2 completed, 1 failed, 0 rejected");

  // $BRIDGE_WORKER_SOCKET wins; unset (or empty) falls back to the
  // daemon's default socket.
  ::setenv("BRIDGE_WORKER_SOCKET", "/tmp/bridge-worker-test.sock", 1);
  EXPECT_EQ(SweepWorker::defaultSocketPath(), "/tmp/bridge-worker-test.sock");
  ::setenv("BRIDGE_WORKER_SOCKET", "", 1);
  EXPECT_EQ(SweepWorker::defaultSocketPath(), SweepDaemon::defaultSocketPath());
  ::unsetenv("BRIDGE_WORKER_SOCKET");
  EXPECT_EQ(SweepWorker::defaultSocketPath(), SweepDaemon::defaultSocketPath());
}

TEST(ServeClientErrorTest, ConnectFailureThrowsWithTheSocketPath) {
  // Construction performs the connect + hello handshake, so a dead socket
  // fails fast with the path in the message, not at first use.
  try {
    ServeClient client("/nonexistent-dir/bridge-no-daemon.sock");
    FAIL() << "connecting to a dead socket must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bridge-no-daemon.sock"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace bridge::serve
