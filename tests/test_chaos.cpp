// Chaos suite (ctest -L chaos): the sweep engine and the tuners under
// deterministic injected faults (DESIGN.md §5f). Every scenario here is the
// recovery machinery doing its job end to end — transient faults retried to
// bit-identical results, permanent failures quarantined across restarts,
// torn/corrupted cache writes detected and recomputed, and a degraded tune
// that records its skip set in the checkpoint and resumes bit-identically.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sweep/sweep.h"
#include "tune/npb_objective.h"
#include "tune/pareto.h"
#include "tune/tuner.h"

namespace bridge {
namespace {

namespace fs = std::filesystem;

std::string privateDir(const char* tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("bridge-chaos-" + std::string(tag));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<JobSpec> chaosGrid() {
  std::vector<JobSpec> jobs;
  for (const char* kernel : {"MM", "ED1", "ML2", "STL2", "DP1d", "MC"}) {
    jobs.push_back(microbenchJob(PlatformId::kRocket1, kernel, 0.05));
    jobs.push_back(microbenchJob(PlatformId::kBananaPiSim, kernel, 0.05));
  }
  return jobs;
}

void expectSameResults(const std::vector<SweepResult>& got,
                       const std::vector<SweepResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].label, want[i].label);
    EXPECT_EQ(got[i].result.cycles, want[i].result.cycles) << got[i].label;
    EXPECT_EQ(got[i].result.retired, want[i].result.retired) << got[i].label;
    EXPECT_EQ(got[i].result.seconds, want[i].result.seconds) << got[i].label;
    EXPECT_EQ(got[i].result.ipc, want[i].result.ipc) << got[i].label;
    EXPECT_EQ(got[i].stats, want[i].stats) << got[i].label;
  }
}

// Acceptance criterion: under a ~30% transient fault rate the sweep still
// completes, every selected job retried exactly as planned, and the results
// are bit-identical to a fault-free run — at --jobs 1 and --jobs 8.
TEST(ChaosSweepTest, TransientFaultsRetryToBitIdenticalResults) {
  const std::vector<JobSpec> jobs = chaosGrid();

  SweepOptions clean;
  clean.use_cache = false;
  const std::vector<SweepResult> baseline = SweepEngine(clean).run(jobs);

  for (const unsigned workers : {1u, 8u}) {
    SweepOptions chaos;
    chaos.workers = workers;
    chaos.use_cache = false;
    chaos.faults = FaultPlan::fromSpec("throw=0.3,seed=7");
    ASSERT_TRUE(chaos.faults.any());
    SweepEngine engine(chaos);

    RunReport report;
    const std::vector<SweepResult> results = engine.run(jobs, &report);
    EXPECT_TRUE(report.allOk()) << report.summary();
    EXPECT_GT(report.retried, 0u)
        << "30% fault rate selected no job — vacuous run";

    std::size_t faulted = 0;
    for (const SweepResult& r : results) {
      EXPECT_EQ(r.outcome, JobOutcome::kOk) << r.label;
      const unsigned planned =
          engine.injector().plannedFailures(r.label, r.fingerprint);
      EXPECT_EQ(r.attempts, planned + 1) << r.label;
      if (planned > 0) ++faulted;
    }
    EXPECT_GT(faulted, 0u);
    expectSameResults(results, baseline);
  }
}

// The "CRm mechanism": a job failing every retry is quarantined, later runs
// skip it with an explicit outcome — across engine restarts, and even after
// fault injection is switched off (the list is persisted, not the plan).
TEST(ChaosSweepTest, PermanentFailureIsQuarantinedAcrossRestarts) {
  SweepOptions options;
  options.cache_dir = privateDir("quarantine");
  options.faults = FaultPlan::fromSpec("match=ED1");
  const std::vector<JobSpec> jobs = {
      microbenchJob(PlatformId::kRocket1, "MM", 0.05),
      microbenchJob(PlatformId::kRocket2, "STL2", 0.05),
      microbenchJob(PlatformId::kBananaPiSim, "ED1", 0.05)};

  {
    SweepEngine engine(options);
    RunReport report;
    const auto results = engine.run(jobs, &report);
    EXPECT_EQ(results[2].outcome, JobOutcome::kFailed);
    EXPECT_EQ(results[2].attempts, options.failures.max_retries + 1);
    EXPECT_NE(results[2].error.find("injected fault"), std::string::npos);
    EXPECT_EQ(report.failed, 1u);
    EXPECT_EQ(engine.quarantine().size(), 1u);
    EXPECT_TRUE(engine.quarantine().persistent());
  }

  // Restart with the same plan: the failure is skipped, not re-retried.
  {
    SweepEngine engine(options);
    RunReport report;
    const auto results = engine.run(jobs, &report);
    EXPECT_EQ(results[2].outcome, JobOutcome::kQuarantined);
    EXPECT_EQ(results[2].attempts, 0u);
    EXPECT_EQ(report.quarantined, 1u);
    // The healthy jobs replay from cache meanwhile.
    EXPECT_TRUE(results[0].from_cache);
    EXPECT_TRUE(results[1].from_cache);
  }

  // Restart with chaos OFF: the quarantine entry still stands (the
  // real-world analog: the segfaulting kernel is still broken tomorrow).
  SweepOptions healthy = options;
  healthy.faults = FaultPlan{};
  {
    SweepEngine engine(healthy);
    const auto results = engine.run(jobs);
    EXPECT_EQ(results[2].outcome, JobOutcome::kQuarantined);
  }

  // clear() is the operator's "I fixed it" lever.
  {
    SweepEngine engine(healthy);
    EXPECT_EQ(engine.quarantine().clear(), 1u);
    const auto results = engine.run(jobs);
    EXPECT_EQ(results[2].outcome, JobOutcome::kOk);
    EXPECT_GT(results[2].result.cycles, 0u);
  }
}

// Acceptance criterion: torn and bit-corrupted cache writes are detected
// via the checksum footer, deleted, and recomputed — and fsck sees exactly
// the same defects.
TEST(ChaosSweepTest, TornAndCorruptWritesAreDetectedAndRecomputed) {
  const std::vector<JobSpec> jobs = chaosGrid();

  SweepOptions clean;
  clean.use_cache = false;
  const std::vector<SweepResult> baseline = SweepEngine(clean).run(jobs);

  SweepOptions chaos;
  chaos.cache_dir = privateDir("torn-writes");
  chaos.faults = FaultPlan::fromSpec("torn=0.5,corrupt=0.5,seed=3");
  {
    SweepEngine engine(chaos);
    // The in-memory results of the writing run itself are untouched —
    // chaos only mangles what lands on disk.
    expectSameResults(engine.run(jobs), baseline);
  }

  // fsck (report mode) sees the damage without repairing it.
  SweepOptions honest = chaos;
  honest.faults = FaultPlan{};
  SweepEngine engine(honest);
  const CacheFsck audit = engine.cache().fsck(/*repair=*/false);
  EXPECT_EQ(audit.scanned, jobs.size());
  EXPECT_GT(audit.corrupt, 0u) << "50%+50% mangle rates hit no entry";
  EXPECT_LT(audit.corrupt, jobs.size()) << "every entry mangled — suspicious";

  // A fresh engine over the poisoned cache: corrupt entries are misses
  // (deleted + recomputed), clean ones are hits, results bit-identical.
  RunReport report;
  const std::vector<SweepResult> recovered = engine.run(jobs, &report);
  EXPECT_TRUE(report.allOk()) << report.summary();
  EXPECT_EQ(report.from_cache, jobs.size() - audit.corrupt);
  expectSameResults(recovered, baseline);

  // The recomputed entries were re-stored clean: now everything replays.
  EXPECT_TRUE(engine.cache().fsck(false).clean());
  RunReport warm;
  expectSameResults(engine.run(jobs, &warm), baseline);
  EXPECT_EQ(warm.from_cache, jobs.size());
}

// A degraded FidelityObjective campaign: one probe kernel permanently
// failing (sim side and reference side), the tune completes with penalty
// scores, the checkpoint records the skip set and the failure policy, a
// resume is bit-identical, and a checkpoint written under one policy
// refuses to resume under another.
TEST(ChaosTuneTest, DegradedFidelityTuneCheckpointsSkipSetAndResumes) {
  ParamSpace space;
  space.addPow2("l2.banks", 1, 4).addPow2("bus.width_bits", 64, 128);

  const std::string dir = privateDir("degraded-tune");
  const std::string ckpt = dir + "/checkpoint.json";

  const auto makeObjective = [&](unsigned retries) {
    FidelityOptions fopts;
    fopts.model = PlatformId::kRocket1;
    fopts.reference = PlatformId::kBananaPiHw;
    fopts.kernels = {"ED1", "ML2", "MM"};
    fopts.scale = 0.05;
    SweepOptions sweep;
    sweep.workers = 2;
    sweep.cache_dir = dir + "/cache";
    sweep.failures.max_retries = retries;
    sweep.faults = FaultPlan::fromSpec("match=MM@");
    return FidelityObjective(fopts, sweep);
  };

  TuneOptions opts;
  opts.budget = 6;

  FidelityObjective ref = makeObjective(0);
  const TuneResult full = CoordinateDescentTuner(space, &ref, opts).run({0, 0});
  EXPECT_GT(full.best_error, 0.0);
  // Both the failing sim probes and the failing reference probe are named.
  ASSERT_FALSE(full.skipped.empty());
  bool sim_side = false, ref_side = false;
  for (const std::string& s : full.skipped) {
    ASSERT_NE(s.find("MM@"), std::string::npos) << s;
    if (s == "MM@Rocket1") sim_side = true;
    if (s == "MM@BananaPiHw") ref_side = true;
  }
  EXPECT_TRUE(sim_side);
  EXPECT_TRUE(ref_side);

  // Interrupted run, then resume: bit-identical to the uninterrupted one.
  {
    FidelityObjective first = makeObjective(0);
    TuneOptions interrupted = opts;
    interrupted.budget = 3;
    interrupted.checkpoint = ckpt;
    CoordinateDescentTuner(space, &first, interrupted).run({0, 0});
  }
  {
    std::ifstream in(ckpt);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string json = buf.str();
    EXPECT_NE(json.find("\"policy\""), std::string::npos);
    EXPECT_NE(json.find("\"skipped\""), std::string::npos);
    EXPECT_NE(json.find("MM@Rocket1"), std::string::npos);
  }
  {
    FidelityObjective second = makeObjective(0);
    TuneOptions resumed = opts;
    resumed.checkpoint = ckpt;
    const TuneResult cont =
        CoordinateDescentTuner(space, &second, resumed).run({0, 0});
    ASSERT_EQ(cont.trajectory.size(), full.trajectory.size());
    for (std::size_t i = 0; i < full.trajectory.size(); ++i) {
      EXPECT_EQ(space.pointKey(cont.trajectory[i].point),
                space.pointKey(full.trajectory[i].point));
      EXPECT_EQ(cont.trajectory[i].error, full.trajectory[i].error);
    }
    EXPECT_EQ(cont.best_error, full.best_error);
    EXPECT_EQ(cont.skipped, full.skipped);
  }

  // A different failure policy (different retry budget) is a different
  // score semantics: the resume must be refused, not silently mixed.
  FidelityObjective other = makeObjective(3);
  TuneOptions mismatched = opts;
  mismatched.checkpoint = ckpt;
  CoordinateDescentTuner tuner(space, &other, mismatched);
  EXPECT_THROW(tuner.run({0, 0}), std::runtime_error);
}

// Acceptance criterion: a tune_npb-style degraded campaign — one NPB cell
// permanently failing on every platform — completes, records the skip set
// in the schema-v3 checkpoint, and resumes bit-identically.
TEST(ChaosTuneTest, DegradedNpbParetoRunCompletesAndResumes) {
  ParamSpace space;
  space.addPow2("rocket/bus.width_bits", 64, 256);
  space.addPow2("boom/bus.width_bits", 64, 256);

  const std::string dir = privateDir("degraded-npb");
  const std::string ckpt = dir + "/checkpoint.json";

  const auto makeObjective = [&] {
    NpbObjectiveOptions nopts;
    nopts.benchmarks = {NpbBenchmark::kCG, NpbBenchmark::kMG};
    nopts.run.scale = 0.02;
    nopts.run.mg_top = 12;
    SweepOptions sweep;
    sweep.cache_dir = dir + "/cache";
    sweep.failures.max_retries = 0;
    sweep.faults = FaultPlan::fromSpec("match=CG/1r@");
    return NpbObjective(nopts, sweep);
  };

  ParetoOptions opts;
  opts.budget = 6;
  opts.descent = ParetoDescent::kAnnealing;

  NpbObjective ref = makeObjective();
  const ParetoResult full = ParetoTuner(space, &ref, opts).run({0, 0});
  EXPECT_EQ(full.evaluations, 6u);
  EXPECT_FALSE(full.front.empty());
  ASSERT_FALSE(full.skipped.empty());
  for (const std::string& s : full.skipped) {
    EXPECT_NE(s.find("CG/1r@"), std::string::npos) << s;
  }

  {
    NpbObjective first = makeObjective();
    ParetoOptions interrupted = opts;
    interrupted.budget = 3;
    interrupted.checkpoint = ckpt;
    ParetoTuner(space, &first, interrupted).run({0, 0});
  }
  {
    std::ifstream in(ckpt);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string json = buf.str();
    EXPECT_NE(json.find("\"policy\""), std::string::npos);
    EXPECT_NE(json.find("CG/1r@"), std::string::npos);
  }

  NpbObjective second = makeObjective();
  ParetoOptions resumed = opts;
  resumed.checkpoint = ckpt;
  const ParetoResult cont = ParetoTuner(space, &second, resumed).run({0, 0});
  ASSERT_EQ(cont.trajectory.size(), full.trajectory.size());
  for (std::size_t i = 0; i < full.trajectory.size(); ++i) {
    EXPECT_EQ(space.pointKey(cont.trajectory[i].point),
              space.pointKey(full.trajectory[i].point));
    EXPECT_EQ(cont.trajectory[i].errors, full.trajectory[i].errors);
  }
  ASSERT_EQ(cont.front.size(), full.front.size());
  for (std::size_t i = 0; i < full.front.size(); ++i) {
    EXPECT_EQ(space.pointKey(cont.front[i].point),
              space.pointKey(full.front[i].point));
    EXPECT_EQ(cont.front[i].errors, full.front[i].errors);
  }
  EXPECT_EQ(cont.skipped, full.skipped);
}

}  // namespace
}  // namespace bridge
