#include "soc/soc.h"

#include <gtest/gtest.h>

#include "platforms/platforms.h"
#include "trace/kernel.h"

namespace bridge {
namespace {

TEST(Soc, BuildsEveryPlatformAtOneAndFourCores) {
  for (const PlatformId id : allPlatforms()) {
    for (const unsigned cores : {1u, 4u}) {
      Soc soc(makePlatform(id, cores));
      EXPECT_EQ(soc.numCores(), cores) << platformName(id);
    }
  }
}

TEST(Soc, RunTraceReturnsCycles) {
  Soc soc(makePlatform(PlatformId::kRocket1, 1));
  KernelBuilder b("t");
  b.segment(1000).add(alu(intReg(5), intReg(6)));
  auto trace = b.build();
  const Cycle cycles = soc.runTrace(*trace);
  EXPECT_GT(cycles, 1000u);
  EXPECT_EQ(soc.core(0).retired(), 2000u);  // alu + loop branch
}

TEST(Soc, RunTraceRejectsMpiOps) {
  Soc soc(makePlatform(PlatformId::kRocket1, 1));
  SequenceTrace seq("bad");
  seq.appendOp(makeMpiOp(MpiKind::kBarrier, 0, 0));
  EXPECT_THROW(soc.runTrace(seq), std::logic_error);
}

TEST(Soc, SecondsUsesConfiguredFrequency) {
  Soc soc(makePlatform(PlatformId::kRocket1, 1));  // 1.6 GHz
  EXPECT_DOUBLE_EQ(soc.seconds(1'600'000'000), 1.0);
  Soc fast(makePlatform(PlatformId::kFastBananaPiSim, 1));  // 3.2 GHz
  EXPECT_DOUBLE_EQ(fast.seconds(3'200'000'000), 1.0);
}

TEST(Soc, StatsExposedThroughRegistry) {
  Soc soc(makePlatform(PlatformId::kRocket1, 1));
  KernelBuilder b("t");
  const int g = b.addrGen(std::make_unique<StrideGen>(0x100000, 64, 65536));
  b.segment(256).add(load(intReg(5), g));
  auto trace = b.build();
  soc.runTrace(*trace);
  EXPECT_GT(soc.stats().counterValue("mem.l1d.miss"), 0u);
}

TEST(Soc, DeterministicAcrossRuns) {
  auto run = [] {
    Soc soc(makePlatform(PlatformId::kMilkVSim, 1));
    KernelBuilder b("t");
    const int g = b.addrGen(
        std::make_unique<RandomGen>(0x100000, 1 << 20, 8, 42));
    b.segment(5000).add(load(intReg(5), g));
    auto trace = b.build();
    return soc.runTrace(*trace);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace bridge
