// Property tests for the ParetoArchive invariants promised in pareto.h:
// mutual nondomination, deterministic iteration order, permutation
// invariance (when the front fits capacity), and extreme-preserving
// crowding pruning beyond capacity.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "tune/pareto.h"

namespace bridge {
namespace {

using Candidate = std::pair<ParamPoint, std::vector<double>>;

std::string archiveKey(const ParetoArchive& a) {
  std::string out;
  for (const ParetoEntry& e : a.entries()) {
    for (const std::size_t idx : e.point) out += std::to_string(idx) + ".";
    out += ":";
    for (const double err : e.errors) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g,", err);
      out += buf;
    }
    out += ";";
  }
  return out;
}

void expectMutuallyNondominated(const ParetoArchive& a) {
  const auto& es = a.entries();
  for (std::size_t i = 0; i < es.size(); ++i) {
    for (std::size_t j = 0; j < es.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(es[i].errors, es[j].errors))
          << "entry " << i << " dominates entry " << j;
    }
  }
}

TEST(DominatesTest, WeakDominanceSemantics) {
  EXPECT_TRUE(dominates({1.0, 2.0}, {2.0, 3.0}));
  EXPECT_TRUE(dominates({1.0, 3.0}, {2.0, 3.0}));   // equal in one, better in one
  EXPECT_FALSE(dominates({1.0, 2.0}, {1.0, 2.0}));  // equality is not dominance
  EXPECT_FALSE(dominates({1.0, 4.0}, {2.0, 3.0}));  // incomparable
  EXPECT_FALSE(dominates({2.0, 3.0}, {1.0, 2.0}));
  EXPECT_THROW(dominates({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(ParetoArchiveTest, KeepsOnlyTheNondominatedSet) {
  ParetoArchive a(16);
  EXPECT_TRUE(a.insert({0}, {3.0, 3.0}));
  EXPECT_TRUE(a.insert({1}, {1.0, 5.0}));
  EXPECT_TRUE(a.insert({2}, {5.0, 1.0}));
  EXPECT_EQ(a.size(), 3u);
  // Dominated by {0}: rejected, archive untouched.
  EXPECT_FALSE(a.insert({3}, {4.0, 4.0}));
  EXPECT_EQ(a.size(), 3u);
  // Dominates {0}: evicts it.
  EXPECT_TRUE(a.insert({4}, {2.0, 2.0}));
  EXPECT_EQ(a.size(), 3u);
  expectMutuallyNondominated(a);
  // The ideal point sweeps everything.
  EXPECT_TRUE(a.insert({5}, {0.5, 0.5}));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.entries()[0].point, ParamPoint{5});
}

TEST(ParetoArchiveTest, DominatedQueryMatchesMembership) {
  ParetoArchive a(16);
  a.insert({0}, {1.0, 5.0});
  a.insert({1}, {5.0, 1.0});
  EXPECT_TRUE(a.dominated({2.0, 6.0}));   // beaten by {0}
  EXPECT_TRUE(a.dominated({1.0, 5.0}));   // error-identical counts
  EXPECT_FALSE(a.dominated({2.0, 2.0}));  // incomparable with both
  EXPECT_FALSE(a.dominated({0.5, 0.5}));
}

TEST(ParetoArchiveTest, ErrorIdenticalTieKeepsSmallestPointRegardlessOfOrder) {
  for (const bool small_first : {true, false}) {
    ParetoArchive a(8);
    if (small_first) {
      EXPECT_TRUE(a.insert({1, 2}, {1.0, 1.0}));
      EXPECT_FALSE(a.insert({2, 0}, {1.0, 1.0}));
    } else {
      EXPECT_TRUE(a.insert({2, 0}, {1.0, 1.0}));
      EXPECT_TRUE(a.insert({1, 2}, {1.0, 1.0}));  // replaces: smaller point
    }
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a.entries()[0].point, (ParamPoint{1, 2}));
  }
}

// The permutation-invariance property: a fixed candidate set whose
// nondominated front fits the capacity must yield the identical archive
// (same members, same order) under any insertion order.
TEST(ParetoArchiveTest, InsertOrderInvariantUnderPermutation) {
  // 2-d candidates on and off a front of 6 points.
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < 6; ++i) {
    candidates.push_back(
        {{i, 0}, {static_cast<double>(i), static_cast<double>(10 - i)}});
  }
  // Dominated chaff around the front.
  for (std::size_t i = 0; i < 6; ++i) {
    candidates.push_back(
        {{i, 1}, {static_cast<double>(i) + 0.5, static_cast<double>(11 - i)}});
    candidates.push_back(
        {{i, 2}, {static_cast<double>(i + 2), static_cast<double>(12 - i)}});
  }

  std::string reference;
  Xorshift64Star rng(7);
  for (int perm = 0; perm < 24; ++perm) {
    std::vector<Candidate> shuffled = candidates;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.nextBelow(i)]);
    }
    ParetoArchive a(16);
    for (const Candidate& c : shuffled) a.insert(c.first, c.second);
    expectMutuallyNondominated(a);
    EXPECT_EQ(a.size(), 6u);
    if (perm == 0) {
      reference = archiveKey(a);
    } else {
      EXPECT_EQ(archiveKey(a), reference) << "permutation " << perm;
    }
  }
}

TEST(ParetoArchiveTest, RandomStreamStaysMutuallyNondominated) {
  Xorshift64Star rng(11);
  ParetoArchive a(12);
  for (int i = 0; i < 400; ++i) {
    const ParamPoint p{static_cast<std::size_t>(rng.nextBelow(50)),
                       static_cast<std::size_t>(rng.nextBelow(50))};
    const std::vector<double> errs{rng.nextDouble() * 4.0,
                                   rng.nextDouble() * 4.0};
    a.insert(p, errs);
    ASSERT_LE(a.size(), a.capacity());
  }
  expectMutuallyNondominated(a);
  // Iteration order is sorted by (errors, point).
  const auto& es = a.entries();
  for (std::size_t i = 1; i < es.size(); ++i) {
    EXPECT_LT(es[i - 1].errors, es[i].errors);
  }
}

// Crowding pruning: over capacity, the objective-extreme members survive
// and the pruned set spreads across the front instead of clustering.
TEST(ParetoArchiveTest, CrowdingPruneKeepsExtremes) {
  ParetoArchive a(4);
  // A 9-point front; capacity 4 forces five prunes.
  for (std::size_t i = 0; i < 9; ++i) {
    a.insert({i}, {static_cast<double>(i), static_cast<double>(8 - i)});
  }
  EXPECT_EQ(a.size(), 4u);
  expectMutuallyNondominated(a);
  // Both extremes must still be present.
  bool has_low_first = false, has_low_second = false;
  for (const ParetoEntry& e : a.entries()) {
    if (e.errors[0] == 0.0) has_low_first = true;
    if (e.errors[1] == 0.0) has_low_second = true;
  }
  EXPECT_TRUE(has_low_first);
  EXPECT_TRUE(has_low_second);
}

TEST(ParetoArchiveTest, CapacityIsClampedToAtLeastTwo) {
  ParetoArchive a(0);
  EXPECT_GE(a.capacity(), 2u);
  a.insert({0}, {0.0, 1.0});
  a.insert({1}, {1.0, 0.0});
  EXPECT_EQ(a.size(), 2u);  // both extremes of a 2-point front survive
}

}  // namespace
}  // namespace bridge
