#include "sweep/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/log.h"

namespace bridge {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      futures.push_back(pool.submit([&count] { ++count; }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, FuturesCarryReturnValues) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  std::future<int> good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A failing task must not take the pool down with it.
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, ThrowingTasksDoNotKillSiblingWorkers) {
  // Interleave many throwing and normal tasks across every worker; each
  // exception lands in its own future and every sibling still completes.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    if (i % 2 == 0) {
      futures.push_back(pool.submit(
          [i] { throw std::runtime_error("boom " + std::to_string(i)); }));
    } else {
      futures.push_back(pool.submit([&completed] { ++completed; }));
    }
  }
  int thrown = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (i % 2 == 0) {
      try {
        futures[i].get();
      } catch (const std::runtime_error& e) {
        ++thrown;
        EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u);
      }
    } else {
      futures[i].get();  // must not throw
    }
  }
  EXPECT_EQ(thrown, 32);
  EXPECT_EQ(completed.load(), 32);
  // The pool is still healthy after 32 task failures.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 4; }), std::runtime_error);
  // shutdown() is idempotent, and rejection stays in effect.
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedWork) {
  // One worker + a slow first task guarantees the rest are still queued
  // when the destructor runs; drain semantics require them to complete.
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    for (int i = 0; i < 32; ++i) {
      pool.submit([&count] { ++count; });
    }
  }
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 41 + 1; }).get(), 42);
}

TEST(ThreadPoolTest, CountsSubmittedTasks) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(pool.submit([] {}));
  for (auto& f : futures) f.get();
  EXPECT_EQ(pool.submitted(), 5u);
}

// Concurrent logging from pool workers: records never tear or interleave
// because the sink call is serialized (satellite: thread-safe bridge::log).
std::vector<std::string>& capturedMessages() {
  static std::vector<std::string> v;
  return v;
}

void recordSink(LogLevel, const std::string& msg) {
  capturedMessages().push_back(msg);
}

TEST(ThreadPoolTest, ConcurrentLoggingIsSerialized) {
  capturedMessages().clear();
  setLogSink(&recordSink);
  setLogLevel(LogLevel::kInfo);
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit(
          [i] { BRIDGE_LOG(kInfo) << "worker message " << i; }));
    }
    for (auto& f : futures) f.get();
  }
  resetLogSink();
  setLogLevel(LogLevel::kWarn);

  ASSERT_EQ(capturedMessages().size(), 64u);
  for (const std::string& msg : capturedMessages()) {
    EXPECT_EQ(msg.rfind("worker message ", 0), 0u) << msg;
  }
}

}  // namespace
}  // namespace bridge
