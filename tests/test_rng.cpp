#include "sim/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace bridge {
namespace {

TEST(Xorshift64Star, DeterministicForSameSeed) {
  Xorshift64Star a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xorshift64Star, DifferentSeedsDiverge) {
  Xorshift64Star a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xorshift64Star, ZeroSeedDoesNotStick) {
  Xorshift64Star a(0);
  EXPECT_NE(a.next(), 0u);
  EXPECT_NE(a.next(), a.next());
}

TEST(Xorshift64Star, NextBelowRespectsBound) {
  Xorshift64Star a(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(a.nextBelow(bound), bound);
    }
  }
}

TEST(Xorshift64Star, NextBelowCoversRange) {
  Xorshift64Star a(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(a.nextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xorshift64Star, NextDoubleInUnitInterval) {
  Xorshift64Star a(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = a.nextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xorshift64Star, BernoulliRoughlyCalibrated) {
  Xorshift64Star a(13);
  int taken = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (a.nextBool(0.3)) ++taken;
  }
  EXPECT_NEAR(static_cast<double>(taken) / n, 0.3, 0.01);
}

TEST(SplitMix64, ProducesDistinctStreamSeeds) {
  SplitMix64 sm(123);
  std::set<std::uint64_t> seeds;
  for (int i = 0; i < 100; ++i) seeds.insert(sm.next());
  EXPECT_EQ(seeds.size(), 100u);
}

}  // namespace
}  // namespace bridge
