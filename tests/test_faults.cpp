// FaultPlan / FaultInjector unit properties: spec parsing (including the
// malformed-input "chaos never aborts a run" guarantee), decision
// determinism, and payload mangling. Engine-level chaos behavior lives in
// test_chaos.cpp.
#include "sweep/faults.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/log.h"

namespace bridge {
namespace {

TEST(FaultPlanTest, DefaultPlanIsInactive) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any());
  EXPECT_EQ(plan.signature(), "");
  EXPECT_FALSE(FaultInjector(plan).active());
}

TEST(FaultPlanTest, FromSpecParsesEveryKey) {
  const FaultPlan plan = FaultPlan::fromSpec(
      "seed=42,throw=0.3,transient=2,permanent=0.05,match=CRm,"
      "slow=0.1,slow-ms=20,torn=0.15,corrupt=0.25");
  EXPECT_TRUE(plan.any());
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.throw_rate, 0.3);
  EXPECT_EQ(plan.transient_failures, 2u);
  EXPECT_DOUBLE_EQ(plan.permanent_rate, 0.05);
  EXPECT_EQ(plan.fail_label_substring, "CRm");
  EXPECT_DOUBLE_EQ(plan.slow_rate, 0.1);
  EXPECT_EQ(plan.slow_ms, 20u);
  EXPECT_DOUBLE_EQ(plan.torn_write_rate, 0.15);
  EXPECT_DOUBLE_EQ(plan.corrupt_write_rate, 0.25);

  const std::string sig = plan.signature();
  EXPECT_NE(sig.find("chaos[seed=42"), std::string::npos);
  EXPECT_NE(sig.find("throw=0.3"), std::string::npos);
  EXPECT_NE(sig.find("transient=2"), std::string::npos);
  EXPECT_NE(sig.find("match=CRm"), std::string::npos);

  EXPECT_FALSE(FaultPlan::fromSpec("").any());
}

TEST(FaultPlanTest, MalformedSpecDisablesChaosInsteadOfAborting) {
  // Rates outside [0,1], missing '=', unknown keys, junk numbers: each
  // must yield the inactive default plan — a typo in $BRIDGE_CHAOS must
  // never turn into a failed campaign.
  for (const char* spec :
       {"throw=1.5", "throw=-0.1", "throw=abc", "banana", "frob=1",
        "seed=99999999999", "transient=0", "match=", "slow-ms=999999",
        "throw=0.3,oops"}) {
    const FaultPlan plan = FaultPlan::fromSpec(spec);
    EXPECT_FALSE(plan.any()) << "spec '" << spec << "' should disable chaos";
  }
}

TEST(FaultInjectorTest, DecisionsAreDeterministicPerFingerprint) {
  FaultPlan plan;
  plan.seed = 7;
  plan.throw_rate = 0.5;
  const FaultInjector a(plan);
  const FaultInjector b(plan);  // a separate instance — pure hash, no state

  std::size_t selected = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string fp = "fp" + std::to_string(i);
    const unsigned planned = a.plannedFailures("job", fp);
    EXPECT_EQ(planned, b.plannedFailures("job", fp));
    EXPECT_TRUE(planned == 0 || planned == plan.transient_failures);
    if (planned != 0) ++selected;
  }
  // ~50% selection rate: loose bounds, just catching all-or-nothing bugs.
  EXPECT_GT(selected, 50u);
  EXPECT_LT(selected, 150u);

  // A different seed picks a different subset.
  plan.seed = 8;
  const FaultInjector c(plan);
  std::size_t differs = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string fp = "fp" + std::to_string(i);
    if (a.plannedFailures("job", fp) != c.plannedFailures("job", fp)) {
      ++differs;
    }
  }
  EXPECT_GT(differs, 0u);
}

TEST(FaultInjectorTest, LabelMatchIsPermanentAndBeatsRates) {
  FaultPlan plan;
  plan.fail_label_substring = "CRm";
  const FaultInjector inj(plan);
  EXPECT_EQ(inj.plannedFailures("CRm@Rocket1", "aaaa"),
            FaultInjector::kFailsForever);
  EXPECT_EQ(inj.plannedFailures("MM@Rocket1", "aaaa"), 0u);
  // Even a huge attempt number still throws for a permanent pick.
  EXPECT_THROW(inj.beforeExecute("CRm@Rocket1", "aaaa", 1000),
               FaultInjectionError);
  EXPECT_NO_THROW(inj.beforeExecute("MM@Rocket1", "aaaa", 0));
}

TEST(FaultInjectorTest, TransientFaultClearsAfterPlannedAttempts) {
  FaultPlan plan;
  plan.throw_rate = 1.0;  // select everything
  plan.transient_failures = 2;
  const FaultInjector inj(plan);
  EXPECT_THROW(inj.beforeExecute("j", "fp", 0), FaultInjectionError);
  EXPECT_THROW(inj.beforeExecute("j", "fp", 1), FaultInjectionError);
  EXPECT_NO_THROW(inj.beforeExecute("j", "fp", 2));
}

TEST(FaultInjectorTest, MangleIsDeterministicAndBounded) {
  FaultPlan plan;
  plan.corrupt_write_rate = 1.0;
  const FaultInjector inj(plan);
  const std::string payload(256, 'x');
  const std::string once = inj.mangleCachePayload("fp", payload);
  const std::string twice = inj.mangleCachePayload("fp", payload);
  EXPECT_EQ(once, twice);       // same fingerprint, same damage
  EXPECT_NE(once, payload);     // exactly one bit differs
  ASSERT_EQ(once.size(), payload.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    unsigned char diff =
        static_cast<unsigned char>(once[i] ^ payload[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);

  FaultPlan torn;
  torn.torn_write_rate = 1.0;
  const std::string cut = FaultInjector(torn).mangleCachePayload("fp", payload);
  EXPECT_LT(cut.size(), payload.size());
  EXPECT_GE(cut.size(), 1u);
}

}  // namespace
}  // namespace bridge
