// Wire-protocol unit tests: framing, socket I/O, and codec round-trips.
// Everything that crosses the daemon socket must survive a round trip
// bit-identically — doubles included — or remote results would silently
// diverge from local ones.
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/protocol.h"
#include "sweep/fingerprint.h"
#include "sweep/job.h"

namespace bridge::serve {
namespace {

TEST(ServeFraming, EncodeProducesHexLengthPrefix) {
  const std::string frame = encodeFrame("{\"type\":\"ping\"}");
  ASSERT_GE(frame.size(), 9u);
  EXPECT_EQ(frame.substr(0, 9), "0000000f\n");
  EXPECT_EQ(frame.substr(9), "{\"type\":\"ping\"}");
}

TEST(ServeFraming, HeaderRoundTrips) {
  const std::string frame = encodeFrame("abc");
  const std::optional<std::size_t> n = decodeFrameHeader(frame.substr(0, 9));
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 3u);
}

TEST(ServeFraming, MalformedHeadersAreRejected) {
  EXPECT_FALSE(decodeFrameHeader("0000000f"));      // too short
  EXPECT_FALSE(decodeFrameHeader("0000000F\n"));    // uppercase hex
  EXPECT_FALSE(decodeFrameHeader("0000000g\n"));    // not hex
  EXPECT_FALSE(decodeFrameHeader("00000003x"));     // no newline
  EXPECT_FALSE(decodeFrameHeader("ffffffff\n"));    // over the payload cap
}

TEST(ServeFraming, EncodeRefusesOversizedPayload) {
  std::string big(kMaxFramePayload + 1, 'x');
  EXPECT_THROW(encodeFrame(big), std::length_error);
}

TEST(ServeFraming, SendRecvRoundTripsOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "{\"type\":\"stats\"}";
  std::string error;
  ASSERT_TRUE(sendFrame(fds[0], payload, &error)) << error;
  std::string received;
  ASSERT_TRUE(recvFrame(fds[1], &received, &error)) << error;
  EXPECT_EQ(received, payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeFraming, CleanEofIsNotAnError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);  // peer hangs up between requests
  std::string payload;
  std::string error = "sentinel";
  EXPECT_FALSE(recvFrame(fds[1], &payload, &error));
  EXPECT_TRUE(error.empty());  // clean EOF: empty error by contract
  ::close(fds[1]);
}

TEST(ServeFraming, TruncatedPayloadIsAnError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Header promises 16 bytes; deliver 4 and hang up.
  const std::string partial = std::string("00000010\n") + "oops";
  ASSERT_EQ(::send(fds[0], partial.data(), partial.size(), 0),
            static_cast<ssize_t>(partial.size()));
  ::close(fds[0]);
  std::string payload;
  std::string error;
  EXPECT_FALSE(recvFrame(fds[1], &payload, &error));
  EXPECT_FALSE(error.empty());
  ::close(fds[1]);
}

TEST(ServeFraming, StopFlagInterruptsTheWait) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    stop.store(true);
  });
  std::string payload;
  std::string error = "sentinel";
  EXPECT_FALSE(recvFrame(fds[1], &payload, &error, &stop));
  EXPECT_TRUE(error.empty());  // a stop is a shutdown, not a fault
  flipper.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

JobSpec sampleNpbJob() {
  JobSpec spec = npbJob(PlatformId::kMediumBoom, NpbBenchmark::kMG, 4, 0.5, 7);
  spec.npb_mg_top = 32;
  spec.overrides.set("l2.banks", "8");
  spec.overrides.set("ooo.rob", "96");
  return spec;
}

TEST(ServeCodec, JobSpecRoundTripsThroughJson) {
  const JobSpec spec = sampleNpbJob();
  const std::optional<JobSpec> back = jobSpecFromJson(jobSpecToJson(spec));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->label, spec.label);
  EXPECT_EQ(back->kind, spec.kind);
  EXPECT_EQ(back->platform, spec.platform);
  EXPECT_EQ(back->ranks, spec.ranks);
  EXPECT_EQ(back->seed, spec.seed);
  EXPECT_EQ(back->npb_mg_top, spec.npb_mg_top);
  // The fingerprint hashes every execution-relevant field (including the
  // overrides): equality here is equality of the experiment itself.
  EXPECT_EQ(jobFingerprint(*back), jobFingerprint(spec));
}

TEST(ServeCodec, EveryWorkloadKindRoundTrips) {
  std::vector<JobSpec> specs;
  specs.push_back(microbenchJob(PlatformId::kRocket1, "MM", 0.5, 3));
  specs.push_back(npbJob(PlatformId::kLargeBoom, NpbBenchmark::kCG, 2));
  specs.push_back(umeJob(PlatformId::kRocket2, 2));
  specs.push_back(
      lammpsJob(PlatformId::kSmallBoom, LammpsBenchmark::kLennardJones, 2));
  for (const JobSpec& spec : specs) {
    const std::optional<JobSpec> back = jobSpecFromJson(jobSpecToJson(spec));
    ASSERT_TRUE(back.has_value()) << spec.label;
    EXPECT_EQ(jobFingerprint(*back), jobFingerprint(spec)) << spec.label;
  }
}

TEST(ServeCodec, SweepResultRoundTripsBitIdentically) {
  SweepResult result;
  result.label = "CG@Rocket1 x2";
  result.fingerprint = "00ffee1122334455";
  result.result.cycles = 123456789012345ull;
  result.result.retired = 98765432109876ull;
  result.result.seconds = 0.1 + 0.2;  // not representable: exactness matters
  result.result.ipc = 1.0 / 3.0;
  result.stats = {{"l1d.miss", 42}, {"bus.beats", 7}};
  result.from_cache = true;
  result.outcome = JobOutcome::kTimedOut;
  result.error = "attempt 1 took 2.5s (budget 1s)";
  result.attempts = 3;

  const std::optional<SweepResult> back =
      sweepResultFromJson(sweepResultToJson(result));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->label, result.label);
  EXPECT_EQ(back->fingerprint, result.fingerprint);
  EXPECT_EQ(back->result.cycles, result.result.cycles);
  EXPECT_EQ(back->result.retired, result.result.retired);
  // Bitwise, not approximate: the whole point of %.17g round-tripping.
  EXPECT_EQ(std::memcmp(&back->result.seconds, &result.result.seconds,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&back->result.ipc, &result.result.ipc, sizeof(double)),
            0);
  EXPECT_EQ(back->stats, result.stats);
  EXPECT_EQ(back->from_cache, result.from_cache);
  EXPECT_EQ(back->outcome, result.outcome);
  EXPECT_EQ(back->error, result.error);
  EXPECT_EQ(back->attempts, result.attempts);
}

TEST(ServeCodec, RunReportRoundTrips) {
  RunReport report;
  report.total = 10;
  report.ok = 7;
  report.failed = 1;
  report.timed_out = 1;
  report.quarantined = 1;
  report.from_cache = 4;
  report.retried = 2;
  report.failed_labels = {"a job", "another \"quoted\" job", "third\\job"};
  const std::optional<RunReport> back =
      runReportFromJson(runReportToJson(report));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->total, report.total);
  EXPECT_EQ(back->ok, report.ok);
  EXPECT_EQ(back->failed, report.failed);
  EXPECT_EQ(back->timed_out, report.timed_out);
  EXPECT_EQ(back->quarantined, report.quarantined);
  EXPECT_EQ(back->from_cache, report.from_cache);
  EXPECT_EQ(back->retried, report.retried);
  EXPECT_EQ(back->failed_labels, report.failed_labels);
}

TEST(ServeCodec, HelloAndStatsRoundTrip) {
  ServeHello hello;
  hello.version = std::string(kProtocolVersion);
  hello.policy = "retries=2,backoff=0..1000ms,timeout=off,quarantine=on";
  hello.cache_dir = "/tmp/cache";
  hello.workers = 8;
  const std::optional<ServeHello> h = helloFromJson(helloToJson(hello));
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->version, hello.version);
  EXPECT_EQ(h->policy, hello.policy);
  EXPECT_EQ(h->cache_dir, hello.cache_dir);
  EXPECT_EQ(h->workers, hello.workers);

  ServeStats stats;
  stats.connections = 3;
  stats.requests = 12;
  stats.jobs = 40;
  stats.admitted = 10;
  stats.attached = 30;
  stats.executed = 9;
  stats.cache_hits = 1;
  stats.report.total = 10;
  stats.report.ok = 10;
  const std::optional<ServeStats> s = statsFromJson(statsToJson(stats));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->connections, stats.connections);
  EXPECT_EQ(s->requests, stats.requests);
  EXPECT_EQ(s->jobs, stats.jobs);
  EXPECT_EQ(s->admitted, stats.admitted);
  EXPECT_EQ(s->attached, stats.attached);
  EXPECT_EQ(s->executed, stats.executed);
  EXPECT_EQ(s->cache_hits, stats.cache_hits);
  EXPECT_EQ(s->report.total, stats.report.total);
}

TEST(ServeCodec, RequestRoundTripsAllKinds) {
  ServeRequest run;
  run.kind = ServeRequest::Kind::kRun;
  run.jobs.push_back(microbenchJob(PlatformId::kRocket1, "MM"));
  run.jobs.push_back(sampleNpbJob());
  const std::optional<ServeRequest> r = requestFromJson(requestToJson(run));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, ServeRequest::Kind::kRun);
  ASSERT_EQ(r->jobs.size(), 2u);
  EXPECT_EQ(jobFingerprint(r->jobs[0]), jobFingerprint(run.jobs[0]));
  EXPECT_EQ(jobFingerprint(r->jobs[1]), jobFingerprint(run.jobs[1]));

  for (const ServeRequest::Kind kind :
       {ServeRequest::Kind::kStats, ServeRequest::Kind::kShutdown,
        ServeRequest::Kind::kPing}) {
    ServeRequest request;
    request.kind = kind;
    const std::optional<ServeRequest> back =
        requestFromJson(requestToJson(request));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->kind, kind);
    EXPECT_TRUE(back->jobs.empty());
  }
}

TEST(ServeCodec, ResponseRoundTripsAllKinds) {
  ServeResponse results;
  results.kind = ServeResponse::Kind::kResults;
  SweepResult one;
  one.label = "MM@Rocket1";
  one.fingerprint = "abcdef0123456789";
  one.result.cycles = 42;
  results.results.push_back(one);
  results.report.total = 1;
  results.report.ok = 1;
  const std::optional<ServeResponse> r =
      responseFromJson(responseToJson(results));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, ServeResponse::Kind::kResults);
  ASSERT_EQ(r->results.size(), 1u);
  EXPECT_EQ(r->results[0].result.cycles, 42u);
  EXPECT_EQ(r->report.ok, 1u);

  ServeResponse error;
  error.kind = ServeResponse::Kind::kError;
  error.message = "policy mismatch";
  const std::optional<ServeResponse> e =
      responseFromJson(responseToJson(error));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->kind, ServeResponse::Kind::kError);
  EXPECT_EQ(e->message, "policy mismatch");
}

TEST(ServeCodec, MalformedPayloadsAreRejectedNotCrashed) {
  const std::vector<std::string> garbage = {
      "",
      "not json",
      "{}",
      "{\"type\":\"warp-core\"}",
      "{\"type\":\"run\",\"jobs\":\"not-an-array\"}",
      "{\"type\":\"run\",\"jobs\":[{\"kind\":\"sorcery\"}]}",
      "[1,2,3]",
  };
  for (const std::string& payload : garbage) {
    EXPECT_FALSE(requestFromJson(payload).has_value()) << payload;
    EXPECT_FALSE(responseFromJson(payload).has_value()) << payload;
    EXPECT_FALSE(helloFromJson(payload).has_value()) << payload;
  }
}

}  // namespace
}  // namespace bridge::serve
