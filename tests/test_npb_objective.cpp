// NpbObjective properties: stable component structure, worker-count
// determinism, bit-identical cache-hit replay, the rocket/boom coupling
// that makes the Pareto front non-degenerate, and bit-identical
// checkpoint-resume of the annealing-mode ParetoTuner it pairs with.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "tune/npb_objective.h"
#include "tune/pareto.h"

namespace bridge {
namespace {

namespace fs = std::filesystem;

// The whole file runs at a deliberately tiny problem class: the component
// *structure* and determinism properties under test are scale-invariant,
// and the 12^3 MG grid keeps every simulation in the tens of milliseconds.
NpbConfig tinyRun() {
  NpbConfig run;
  run.scale = 0.02;
  run.mg_top = 12;
  return run;
}

NpbObjectiveOptions tinyOptions(std::vector<NpbBenchmark> benchmarks = {
                                    NpbBenchmark::kCG, NpbBenchmark::kMG}) {
  NpbObjectiveOptions opts;
  opts.benchmarks = std::move(benchmarks);
  opts.run = tinyRun();
  return opts;
}

std::string privateDir(const char* tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("bridge-npb-" + std::string(tag));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

SweepOptions cachedSweep(const std::string& dir) {
  SweepOptions sweep;
  sweep.cache_dir = dir;
  return sweep;
}

std::string trajectoryString(const ParetoResult& r, const ParamSpace& s) {
  std::ostringstream os;
  for (const ParetoEntry& e : r.trajectory) {
    os << s.pointKey(e.point) << " ->";
    for (const double err : e.errors) {
      char buf[40];
      std::snprintf(buf, sizeof buf, " %.17g", err);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

std::string frontString(const std::vector<ParetoEntry>& front,
                        const ParamSpace& s) {
  std::ostringstream os;
  for (const ParetoEntry& e : front) {
    os << s.pointKey(e.point) << " ->";
    for (const double err : e.errors) {
      char buf[40];
      std::snprintf(buf, sizeof buf, " %.17g", err);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

TEST(NpbObjectiveTest, ComponentOrderIsStableAndHeldOutIsExcluded) {
  NpbObjectiveOptions opts;  // the real defaults, structure only — no sims
  opts.run = tinyRun();
  NpbObjective objective(opts);
  ASSERT_EQ(objective.arity(), 6u);
  const char* expected[] = {"CG/1r", "CG/4r", "IS/1r",
                            "IS/4r", "MG/1r", "MG/4r"};
  for (std::size_t i = 0; i < objective.components().size(); ++i) {
    EXPECT_EQ(npbCellName(objective.components()[i]), expected[i]);
    EXPECT_NE(objective.components()[i].bench, opts.held_out);
  }
  // A second instance agrees exactly — the checkpoint and golden-snapshot
  // identity depends on this order.
  NpbObjective again(opts);
  ASSERT_EQ(again.arity(), objective.arity());
  for (std::size_t i = 0; i < objective.arity(); ++i) {
    EXPECT_EQ(npbCellName(again.components()[i]),
              npbCellName(objective.components()[i]));
  }

  // Tuning on the validation workload would make "held-out" a lie.
  NpbObjectiveOptions bad;
  bad.benchmarks = {NpbBenchmark::kCG, NpbBenchmark::kEP};
  EXPECT_THROW(NpbObjective{bad}, std::invalid_argument);
}

TEST(NpbObjectiveTest, ScoreVectorIsWorkerCountInvariant) {
  auto runWith = [&](unsigned workers) {
    SweepOptions sweep;
    sweep.workers = workers;
    sweep.use_cache = false;  // force real concurrent simulation
    NpbObjective objective(tinyOptions(), sweep);
    return objective.scoreVector({});
  };
  const std::vector<double> serial = runWith(1);
  const std::vector<double> parallel = runWith(8);
  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "component " << i;
    EXPECT_GT(serial[i], 0.0);  // models never match the silicon analogs
  }
}

TEST(NpbObjectiveTest, CacheHitReplayIsBitIdentical) {
  const std::string dir = privateDir("cache-replay");
  std::vector<double> first;
  {
    NpbObjective objective(tinyOptions(), cachedSweep(dir));
    first = objective.scoreVector({});
  }
  std::size_t cached_files = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) ++cached_files;
  }
  ASSERT_GT(cached_files, 0u);

  // A fresh objective over the same cache must replay every run from disk
  // (no new cache entries) and return the exact same bits.
  std::vector<double> second;
  {
    NpbObjective objective(tinyOptions(), cachedSweep(dir));
    second = objective.scoreVector({});
  }
  std::size_t files_after = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) ++files_after;
  }
  EXPECT_EQ(files_after, cached_files);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i], first[i]) << "component " << i;
  }
}

// The property the tentpole hinges on: every component is the mean of a
// rocket-side and a boom-side error, so stepping a knob in EITHER
// namespace moves EVERY component — the objective is non-separable across
// the combined space, unlike BiPlatformObjective where a rocket knob can
// never affect the boom error.
TEST(NpbObjectiveTest, EveryComponentDependsOnBothNamespaces) {
  const std::string dir = privateDir("coupling");
  NpbObjective objective(tinyOptions(), cachedSweep(dir));

  const std::vector<double> base = objective.scoreVector({});

  Config rocket_step;
  rocket_step.set("rocket/bus.width_bits", "256");  // Rocket1 base: 64
  const std::vector<double> rocket = objective.scoreVector(rocket_step);

  Config boom_step;
  boom_step.set("boom/bus.width_bits", "256");  // MilkVSim base: 128
  const std::vector<double> boom = objective.scoreVector(boom_step);

  ASSERT_EQ(rocket.size(), base.size());
  ASSERT_EQ(boom.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NE(rocket[i], base[i])
        << npbCellName(objective.components()[i])
        << " ignored the rocket-side knob";
    EXPECT_NE(boom[i], base[i])
        << npbCellName(objective.components()[i])
        << " ignored the boom-side knob";
  }
}

// Acceptance criterion: under the coupled objective the archive keeps a
// genuine trade-off set. A bus-width slice suffices — wider buses help
// the bandwidth-bound cells and over-serve the latency-bound ones
// differently on the two sides, so no single point dominates.
TEST(NpbObjectiveTest, ParetoFrontIsNonDegenerate) {
  ParamSpace space;
  space.addPow2("rocket/bus.width_bits", 64, 256);
  space.addPow2("boom/bus.width_bits", 64, 256);

  const std::string dir = privateDir("front");
  NpbObjective objective(tinyOptions(), cachedSweep(dir));
  ParetoOptions opts;
  opts.budget = 9;  // the whole 3x3 slice
  ParetoTuner tuner(space, &objective, opts);
  const ParetoResult result = tuner.run({0, 0});

  EXPECT_GT(result.front.size(), 1u)
      << "coupled NPB objective collapsed to a single ideal point:\n"
      << frontString(result.front, space);
  for (const ParetoEntry& e : result.front) {
    for (const ParetoEntry& other : result.front) {
      EXPECT_FALSE(dominates(other.errors, e.errors));
    }
  }
}

TEST(NpbObjectiveTest, HeldOutScoresEpWithoutTouchingTheTunedSet) {
  const std::string dir = privateDir("heldout");
  NpbObjective objective(tinyOptions(), cachedSweep(dir));
  const NpbEval held = objective.heldOut({});
  ASSERT_EQ(held.components.size(), 2u);
  EXPECT_EQ(npbCellName(held.components[0].cell), "EP/1r");
  EXPECT_EQ(npbCellName(held.components[1].cell), "EP/4r");
  EXPECT_GT(held.error, 0.0);
  // The held-out grid never leaks into the tuner-visible vector.
  EXPECT_EQ(objective.scoreVector({}).size(), 4u);
}

// The tune_npb resume guarantee, mirroring the ParetoTuner resume test but
// through the real NPB objective in annealing mode: kill after K fresh
// evaluations, resume from the schema-v2 checkpoint, and the final
// trajectory and archive match the uninterrupted run bit-for-bit. The
// shared result cache is what makes the resumed evaluations affordable —
// and it must not perturb a single bit of the outcome.
TEST(NpbObjectiveTest, AnnealingCheckpointResumeIsBitIdentical) {
  ParamSpace space;
  space.addPow2("rocket/l1d.mshrs", 2, 16);
  space.addPow2("boom/l2.mshrs", 4, 32);

  const std::string dir = privateDir("resume");
  const std::string ckpt = dir + "/checkpoint.json";
  const auto makeObjective = [&] {
    return NpbObjective(tinyOptions(), cachedSweep(dir));
  };
  ParetoOptions opts;
  opts.budget = 8;
  opts.descent = ParetoDescent::kAnnealing;

  NpbObjective ref = makeObjective();
  const ParetoResult full = ParetoTuner(space, &ref, opts).run({0, 0});
  EXPECT_EQ(full.evaluations, 8u);

  NpbObjective first = makeObjective();
  ParetoOptions interrupted = opts;
  interrupted.budget = 4;
  interrupted.checkpoint = ckpt;
  const ParetoResult partial =
      ParetoTuner(space, &first, interrupted).run({0, 0});
  EXPECT_EQ(partial.evaluations, 4u);

  NpbObjective second = makeObjective();
  ParetoOptions resumed = opts;
  resumed.checkpoint = ckpt;
  int fresh = 0, replayed = 0;
  resumed.on_eval = [&](std::size_t, const ParetoEntry&, bool,
                        bool is_fresh) { (is_fresh ? fresh : replayed)++; };
  const ParetoResult cont = ParetoTuner(space, &second, resumed).run({0, 0});
  EXPECT_EQ(trajectoryString(cont, space), trajectoryString(full, space));
  EXPECT_EQ(frontString(cont.front, space), frontString(full.front, space));
  EXPECT_EQ(replayed, 4);
  EXPECT_EQ(fresh, static_cast<int>(full.objective_calls) - 4);
}

// A synthetic objective for the strategy-identity checks: annealing mode
// must be deterministic in its seed, and a coordinate-descent checkpoint
// must never silently resume an annealing run (the mode is bound into the
// checkpoint's `strategy` field).
class SlopeObjective : public MultiObjective {
 public:
  std::size_t arity() const override { return 2; }
  std::vector<double> scoreVector(const Config& overrides) override {
    const double a = overrides.getDouble("rocket/l1d.mshrs", 0.0);
    const double b = overrides.getDouble("boom/l2.mshrs", 0.0);
    return {a + b, 32.0 - a + (32.0 - b)};
  }
};

ParamSpace slopeSpace() {
  ParamSpace s;
  s.addPow2("rocket/l1d.mshrs", 2, 16);
  s.addPow2("boom/l2.mshrs", 4, 32);
  return s;
}

TEST(NpbObjectiveTest, AnnealingModeIsSeedDeterministic) {
  const ParamSpace space = slopeSpace();
  ParetoOptions opts;
  opts.budget = 12;
  opts.seed = 7;
  opts.descent = ParetoDescent::kAnnealing;
  SlopeObjective a, b;
  const ParetoResult ra = ParetoTuner(space, &a, opts).run({1, 1});
  const ParetoResult rb = ParetoTuner(space, &b, opts).run({1, 1});
  EXPECT_EQ(trajectoryString(ra, space), trajectoryString(rb, space));
  EXPECT_EQ(frontString(ra.front, space), frontString(rb.front, space));
}

TEST(NpbObjectiveTest, DescentModeIsPartOfTheCheckpointIdentity) {
  const ParamSpace space = slopeSpace();
  const std::string ckpt = privateDir("strategy") + "/checkpoint.json";
  {
    SlopeObjective obj;
    ParetoOptions opts;
    opts.budget = 4;
    opts.checkpoint = ckpt;  // default: coordinate descent, "pareto"
    ParetoTuner(space, &obj, opts).run({0, 0});
  }
  SlopeObjective obj;
  ParetoOptions opts;
  opts.budget = 4;
  opts.checkpoint = ckpt;
  opts.descent = ParetoDescent::kAnnealing;  // "pareto-anneal"
  ParetoTuner tuner(space, &obj, opts);
  EXPECT_THROW(tuner.run({0, 0}), std::runtime_error);
}

}  // namespace
}  // namespace bridge
