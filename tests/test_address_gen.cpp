#include "trace/address_gen.h"

#include <gtest/gtest.h>

#include <set>

namespace bridge {
namespace {

TEST(StrideGen, SequenceAndWrap) {
  StrideGen g(0x1000, 8, 24);
  EXPECT_EQ(g.next(), 0x1000u);
  EXPECT_EQ(g.next(), 0x1008u);
  EXPECT_EQ(g.next(), 0x1010u);
  EXPECT_EQ(g.next(), 0x1000u);  // wrapped
}

TEST(StrideGen, NegativeStrideWraps) {
  StrideGen g(0x1000, -8, 32);
  EXPECT_EQ(g.next(), 0x1000u);
  EXPECT_EQ(g.next(), 0x1000u);  // would go negative: reset to base
}

TEST(RandomGen, StaysInRangeAndAligned) {
  RandomGen g(0x1000, 4096, 8, 7);
  for (int i = 0; i < 1000; ++i) {
    const Addr a = g.next();
    EXPECT_GE(a, 0x1000u);
    EXPECT_LT(a, 0x1000u + 4096u);
    EXPECT_EQ(a % 8, 0u);
  }
}

TEST(RandomGen, CoversManySlots) {
  RandomGen g(0, 64 * 8, 8, 9);
  std::set<Addr> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(g.next());
  EXPECT_GT(seen.size(), 50u);
}

TEST(ChaseGen, VisitsEveryNodeOncePerCycle) {
  const std::uint64_t nodes = 64;
  ChaseGen g(0x1000, nodes, 64, 11);
  std::set<Addr> seen;
  for (std::uint64_t i = 0; i < nodes; ++i) seen.insert(g.next());
  EXPECT_EQ(seen.size(), nodes);  // a single cycle: all distinct
  // And the cycle repeats identically.
  std::set<Addr> seen2;
  for (std::uint64_t i = 0; i < nodes; ++i) seen2.insert(g.next());
  EXPECT_EQ(seen, seen2);
}

TEST(ChaseGen, AddressesAreNodeAligned) {
  ChaseGen g(0x1000, 32, 64, 13);
  for (int i = 0; i < 100; ++i) {
    const Addr a = g.next();
    EXPECT_EQ((a - 0x1000) % 64, 0u);
    EXPECT_LT(a, 0x1000u + 32u * 64u);
  }
}

TEST(ChaseGen, DifferentSeedsGiveDifferentPermutations) {
  ChaseGen a(0, 128, 64, 1);
  ChaseGen b(0, 128, 64, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 16);
}

TEST(ConstGen, AlwaysSame) {
  ConstGen g(0xABC0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(g.next(), 0xABC0u);
}

TEST(ConflictGen, CyclesOverWays) {
  ConflictGen g(0x1000, 8192, 3);
  EXPECT_EQ(g.next(), 0x1000u);
  EXPECT_EQ(g.next(), 0x1000u + 8192u);
  EXPECT_EQ(g.next(), 0x1000u + 2u * 8192u);
  EXPECT_EQ(g.next(), 0x1000u);
}

TEST(ConflictGen, AllAddressesShareAnL1Set) {
  // 64-set (and 128-set) x 64B caches: stride 8192 keeps the set index.
  ConflictGen g(0x0, 8192, 24);
  const Addr first = g.next();
  const auto setOf = [](Addr a, unsigned sets) {
    return (a >> 6) & (sets - 1);
  };
  for (int i = 0; i < 48; ++i) {
    const Addr a = g.next();
    EXPECT_EQ(setOf(a, 64), setOf(first, 64));
    EXPECT_EQ(setOf(a, 128), setOf(first, 128));
  }
}

}  // namespace
}  // namespace bridge
