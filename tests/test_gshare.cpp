#include "branch/gshare.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace bridge {
namespace {

double trainAndMeasure(DirectionPredictor& p, Addr pc,
                       const std::vector<bool>& outcomes,
                       std::size_t warmup) {
  int wrong = 0;
  std::size_t measured = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const bool pred = p.predict(pc);
    if (i >= warmup) {
      ++measured;
      if (pred != outcomes[i]) ++wrong;
    }
    p.update(pc, outcomes[i]);
  }
  return static_cast<double>(wrong) / static_cast<double>(measured);
}

TEST(Gshare, LearnsAlternationViaHistory) {
  GsharePredictor p(4096, 12);
  std::vector<bool> alt;
  for (int i = 0; i < 4000; ++i) alt.push_back(i % 2 == 0);
  // After warmup the history disambiguates the two phases perfectly.
  EXPECT_LT(trainAndMeasure(p, 0x400, alt, 1000), 0.02);
}

TEST(Gshare, LearnsShortPeriodicPattern) {
  GsharePredictor p(4096, 12);
  std::vector<bool> pattern;
  const bool proto[] = {true, true, false, true, false, false};
  for (int i = 0; i < 6000; ++i) pattern.push_back(proto[i % 6]);
  EXPECT_LT(trainAndMeasure(p, 0x400, pattern, 2000), 0.05);
}

TEST(Gshare, RandomStreamStaysUnpredictable) {
  GsharePredictor p(4096, 12);
  Xorshift64Star rng(5);
  std::vector<bool> random;
  for (int i = 0; i < 8000; ++i) random.push_back(rng.nextBool(0.5));
  EXPECT_GT(trainAndMeasure(p, 0x400, random, 2000), 0.35);
}

TEST(Gshare, HistoryAdvancesOnUpdate) {
  GsharePredictor p(1024, 8);
  EXPECT_EQ(p.history(), 0u);
  p.update(0x400, true);
  EXPECT_EQ(p.history(), 1u);
  p.update(0x400, false);
  EXPECT_EQ(p.history(), 2u);
  p.update(0x400, true);
  EXPECT_EQ(p.history(), 5u);
}

TEST(Gshare, HistoryMaskBounds) {
  GsharePredictor p(1024, 4);
  for (int i = 0; i < 100; ++i) p.update(0x400, true);
  EXPECT_LT(p.history(), 16u);
}

}  // namespace
}  // namespace bridge
