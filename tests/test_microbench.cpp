#include "workloads/microbench.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace bridge {
namespace {

std::map<OpClass, std::uint64_t> classHistogram(TraceSource& t,
                                                std::uint64_t limit = 1u
                                                    << 22) {
  std::map<OpClass, std::uint64_t> h;
  MicroOp op;
  std::uint64_t n = 0;
  while (t.next(&op) && n++ < limit) ++h[op.cls];
  return h;
}

TEST(Microbench, CatalogHasFortyKernels) {
  EXPECT_EQ(microbenchCatalog().size(), 40u);
}

TEST(Microbench, ThirtyNineUsedOneExcluded) {
  EXPECT_EQ(microbenchNames(false).size(), 39u);
  EXPECT_EQ(microbenchNames(true).size(), 40u);
  EXPECT_TRUE(microbenchInfo("CRm").excluded);  // segfaults in the paper
}

TEST(Microbench, NamesAreUnique) {
  std::set<std::string> names;
  for (const MicrobenchInfo& info : microbenchCatalog()) {
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
  }
}

TEST(Microbench, EveryCategoryRepresented) {
  std::set<MicrobenchCategory> cats;
  for (const MicrobenchInfo& info : microbenchCatalog()) {
    cats.insert(info.category);
  }
  EXPECT_EQ(cats.size(), 5u);
}

TEST(Microbench, UnknownNameThrows) {
  EXPECT_THROW(microbenchInfo("nope"), std::out_of_range);
  EXPECT_THROW(makeMicrobench("nope"), std::out_of_range);
}

TEST(Microbench, AllKernelsProduceOps) {
  for (const MicrobenchInfo& info : microbenchCatalog()) {
    auto t = makeMicrobench(info.name, /*scale=*/0.01);
    MicroOp op;
    ASSERT_TRUE(t->next(&op)) << info.name;
  }
}

TEST(Microbench, AllKernelsTerminate) {
  for (const MicrobenchInfo& info : microbenchCatalog()) {
    auto t = makeMicrobench(info.name, /*scale=*/0.02);
    MicroOp op;
    std::uint64_t n = 0;
    while (t->next(&op)) {
      ASSERT_LT(++n, 5'000'000u) << info.name << " did not terminate";
    }
    EXPECT_GT(n, 10u) << info.name;
  }
}

TEST(Microbench, ScaleControlsLength) {
  auto count = [](double scale) {
    auto t = makeMicrobench("Cca", scale);
    MicroOp op;
    std::uint64_t n = 0;
    while (t->next(&op)) ++n;
    return n;
  };
  const auto small = count(0.05);
  const auto large = count(0.2);
  EXPECT_NEAR(static_cast<double>(large) / static_cast<double>(small), 4.0,
              0.5);
}

TEST(Microbench, MdIsDependentChase) {
  // MD: every load's address register equals its destination (serial).
  auto t = makeMicrobench("MD", 0.05);
  MicroOp op;
  std::uint64_t loads = 0;
  while (t->next(&op)) {
    if (op.cls == OpClass::kLoad) {
      ++loads;
      EXPECT_EQ(op.src0, op.dst);
    }
  }
  EXPECT_GT(loads, 100u);
}

TEST(Microbench, MdStaysInOneSmallRegion) {
  auto t = makeMicrobench("MD", 0.05);
  MicroOp op;
  Addr lo = ~Addr{0}, hi = 0;
  while (t->next(&op)) {
    if (op.cls == OpClass::kLoad) {
      lo = std::min(lo, op.addr);
      hi = std::max(hi, op.addr);
    }
  }
  EXPECT_LE(hi - lo, 16u * 1024);  // L1-resident
}

TEST(Microbench, MmSpansBeyondLlc) {
  auto t = makeMicrobench("MM", 0.05);
  MicroOp op;
  Addr lo = ~Addr{0}, hi = 0;
  while (t->next(&op)) {
    if (op.cls == OpClass::kLoad) {
      lo = std::min(lo, op.addr);
      hi = std::max(hi, op.addr);
    }
  }
  EXPECT_GT(hi - lo, 64u * 1024 * 1024);  // beyond the MILK-V LLC
}

TEST(Microbench, CchBranchesAreBalancedRandom) {
  auto t = makeMicrobench("CCh", 0.2);
  MicroOp op;
  std::uint64_t taken = 0, total = 0;
  while (t->next(&op)) {
    if (op.cls == OpClass::kBranch && op.pc != 0) {
      // Exclude the (biased) loop back-edge by looking at the explicit
      // branch template only: back-edges target the segment top (lower pc).
      if (op.addr > op.pc) {
        ++total;
        taken += op.taken ? 1 : 0;
      }
    }
  }
  ASSERT_GT(total, 1000u);
  EXPECT_NEAR(static_cast<double>(taken) / static_cast<double>(total), 0.5,
              0.05);
}

TEST(Microbench, MipSweepsLargeCodeFootprint) {
  auto t = makeMicrobench("MIP", 0.5);
  MicroOp op;
  std::set<Addr> code_lines;
  while (t->next(&op)) code_lines.insert(lineAddr(op.pc));
  EXPECT_GT(code_lines.size(), 1000u);  // far beyond any L1I
}

TEST(Microbench, EfIsFpHeavy) {
  auto t = makeMicrobench("EF", 0.05);
  const auto h = classHistogram(*t);
  EXPECT_GT(h.at(OpClass::kFpAdd), h.at(OpClass::kBranch));
}

TEST(Microbench, CrdBalancesCallsAndReturns) {
  auto t = makeMicrobench("CRd", 0.1);
  const auto h = classHistogram(*t);
  EXPECT_EQ(h.at(OpClass::kCall), h.at(OpClass::kRet));
  EXPECT_GT(h.at(OpClass::kCall), 1000u);
}

TEST(Microbench, CrfFibTreeBalancesCallsAndReturns) {
  auto t = makeMicrobench("CRf", 0.5);
  const auto h = classHistogram(*t);
  EXPECT_EQ(h.at(OpClass::kCall), h.at(OpClass::kRet));
}

TEST(Microbench, StoreKernelsActuallyStore) {
  for (const char* name : {"STc", "STL2", "STL2b", "MCS", "MM_st",
                           "ML2_st", "CCh_st", "M_Dyn"}) {
    auto t = makeMicrobench(name, 0.02);
    const auto h = classHistogram(*t);
    EXPECT_GT(h.at(OpClass::kStore), 0u) << name;
  }
}

TEST(Microbench, DeterministicForSameSeed) {
  auto collect = [](std::uint64_t seed) {
    auto t = makeMicrobench("CCh", 0.02, seed);
    std::vector<bool> dirs;
    MicroOp op;
    while (t->next(&op)) {
      if (op.cls == OpClass::kBranch) dirs.push_back(op.taken);
    }
    return dirs;
  };
  EXPECT_EQ(collect(7), collect(7));
  EXPECT_NE(collect(7), collect(8));
}

}  // namespace
}  // namespace bridge
