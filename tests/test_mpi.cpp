#include "mpi/mpi.h"

#include <gtest/gtest.h>

#include "platforms/platforms.h"
#include "trace/kernel.h"

namespace bridge {
namespace {

TraceSourcePtr computeOnly(int iters) {
  KernelBuilder b("compute");
  b.segment(iters).add(alu(intReg(5), intReg(6)));
  return b.build();
}

Soc makeSoc(unsigned cores = 4) {
  return Soc(makePlatform(PlatformId::kRocket1, cores));
}

TEST(Mpi, SingleRankRunsToCompletion) {
  Soc soc = makeSoc();
  std::vector<TraceSourcePtr> traces;
  traces.push_back(computeOnly(1000));
  MpiSimulation sim(&soc, std::move(traces));
  const MpiRunResult r = sim.run();
  EXPECT_GT(r.cycles, 1000u);
  EXPECT_EQ(r.rank_cycles.size(), 1u);
  EXPECT_EQ(r.messages, 0u);
}

TEST(Mpi, SendRecvPairCompletes) {
  Soc soc = makeSoc();
  auto sender = std::make_unique<SequenceTrace>("s");
  sender->append(computeOnly(100));
  sender->appendOp(makeMpiOp(MpiKind::kSend, 1, 4096, 0));
  auto receiver = std::make_unique<SequenceTrace>("r");
  receiver->appendOp(makeMpiOp(MpiKind::kRecv, 0, 4096, 0));
  receiver->append(computeOnly(100));

  std::vector<TraceSourcePtr> traces;
  traces.push_back(std::move(sender));
  traces.push_back(std::move(receiver));
  MpiSimulation sim(&soc, std::move(traces));
  const MpiRunResult r = sim.run();
  EXPECT_EQ(r.messages, 1u);
  EXPECT_EQ(r.bytes_moved, 4096u);
  EXPECT_GT(r.cycles, 100u);
}

TEST(Mpi, RendezvousBlocksSenderUntilReceiverArrives) {
  // Large (rendezvous) message: the receiver arrives late, so the sender's
  // completion is pushed past the receiver's arrival.
  Soc soc = makeSoc();
  auto sender = std::make_unique<SequenceTrace>("s");
  sender->appendOp(makeMpiOp(MpiKind::kSend, 1, 1 << 20, 0));
  auto receiver = std::make_unique<SequenceTrace>("r");
  receiver->append(computeOnly(50000));  // busy for a long while
  receiver->appendOp(makeMpiOp(MpiKind::kRecv, 0, 1 << 20, 0));

  std::vector<TraceSourcePtr> traces;
  traces.push_back(std::move(sender));
  traces.push_back(std::move(receiver));
  MpiSimulation sim(&soc, std::move(traces));
  const MpiRunResult r = sim.run();
  EXPECT_GT(r.rank_cycles[0], 50000u);
}

TEST(Mpi, EagerSendReturnsBeforeReceiverArrives) {
  Soc soc = makeSoc();
  auto sender = std::make_unique<SequenceTrace>("s");
  sender->appendOp(makeMpiOp(MpiKind::kSend, 1, 512, 0));  // eager
  auto receiver = std::make_unique<SequenceTrace>("r");
  receiver->append(computeOnly(80000));
  receiver->appendOp(makeMpiOp(MpiKind::kRecv, 0, 512, 0));

  std::vector<TraceSourcePtr> traces;
  traces.push_back(std::move(sender));
  traces.push_back(std::move(receiver));
  MpiSimulation sim(&soc, std::move(traces));
  const MpiRunResult r = sim.run();
  EXPECT_LT(r.rank_cycles[0], 60000u);  // sender did not wait
  EXPECT_GT(r.rank_cycles[1], 80000u);
}

TEST(Mpi, TagMatchingSelectsRightMessage) {
  Soc soc = makeSoc();
  auto sender = std::make_unique<SequenceTrace>("s");
  sender->appendOp(makeMpiOp(MpiKind::kSend, 1, 256, /*tag=*/1));
  sender->appendOp(makeMpiOp(MpiKind::kSend, 1, 256, /*tag=*/2));
  auto receiver = std::make_unique<SequenceTrace>("r");
  receiver->appendOp(makeMpiOp(MpiKind::kRecv, 0, 256, /*tag=*/2));
  receiver->appendOp(makeMpiOp(MpiKind::kRecv, 0, 256, /*tag=*/1));

  std::vector<TraceSourcePtr> traces;
  traces.push_back(std::move(sender));
  traces.push_back(std::move(receiver));
  MpiSimulation sim(&soc, std::move(traces));
  const MpiRunResult r = sim.run();
  EXPECT_EQ(r.messages, 2u);
}

TEST(Mpi, DeadlockDetected) {
  Soc soc = makeSoc();
  auto a = std::make_unique<SequenceTrace>("a");
  a->appendOp(makeMpiOp(MpiKind::kRecv, 1, 256, 0));
  auto b = std::make_unique<SequenceTrace>("b");
  b->appendOp(makeMpiOp(MpiKind::kRecv, 0, 256, 0));

  std::vector<TraceSourcePtr> traces;
  traces.push_back(std::move(a));
  traces.push_back(std::move(b));
  MpiSimulation sim(&soc, std::move(traces));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Mpi, TooManyRanksRejected) {
  Soc soc = makeSoc(2);
  std::vector<TraceSourcePtr> traces;
  for (int i = 0; i < 3; ++i) traces.push_back(computeOnly(10));
  EXPECT_THROW(MpiSimulation(&soc, std::move(traces)),
               std::invalid_argument);
}

TEST(Mpi, RunMpiProgramHelper) {
  Soc soc = makeSoc();
  const MpiRunResult r = runMpiProgram(&soc, 4, [](int, int) {
    KernelBuilder b("w");
    b.segment(500).add(alu(intReg(5), intReg(6)));
    return b.build();
  });
  EXPECT_EQ(r.rank_cycles.size(), 4u);
  EXPECT_GT(r.retired, 4u * 500u);
}

TEST(Mpi, ContentionSlowsConcurrentMemoryStreams) {
  // Four ranks streaming DRAM finish later than one rank doing the same
  // per-rank work (shared DRAM channel contention).
  auto run = [](int ranks) {
    Soc soc = makeSoc();
    const MpiRunResult r = runMpiProgram(&soc, ranks, [&](int rank, int) {
      KernelBuilder b("stream");
      const int g = b.addrGen(std::make_unique<StrideGen>(
          0x1000'0000 + static_cast<Addr>(rank) * 0x100'0000, 64,
          16 << 20));
      b.segment(20000).add(load(intReg(5), g));
      return b.build();
    });
    return r.cycles;
  };
  EXPECT_GT(run(4), run(1));
}

}  // namespace
}  // namespace bridge
