// Satellite regression test: a parallel sweep must be bit-identical to a
// serial one. Every job builds its own SoC, traces, and RNG streams from
// the spec's seed, so worker count (and scheduling order) can influence
// nothing but wall-clock time.
#include <gtest/gtest.h>

#include <vector>

#include "sweep/sweep.h"
#include "workloads/lammps.h"
#include "workloads/npb.h"

namespace bridge {
namespace {

/// A mixed grid covering every workload kind, both core models, and
/// multi-rank MPI traffic — 13 jobs, deliberately more than the worker
/// count so the parallel run must interleave.
std::vector<JobSpec> mixedJobs() {
  std::vector<JobSpec> jobs;
  for (const char* kernel : {"MM", "STL2", "ED1", "MIM"}) {
    jobs.push_back(microbenchJob(PlatformId::kBananaPiSim, kernel, 0.05));
    jobs.push_back(microbenchJob(PlatformId::kMilkVSim, kernel, 0.05));
  }
  jobs.push_back(npbJob(PlatformId::kBananaPiSim, NpbBenchmark::kCG,
                        /*ranks=*/2, /*scale=*/0.1));
  jobs.push_back(npbJob(PlatformId::kMilkVSim, NpbBenchmark::kEP,
                        /*ranks=*/2, /*scale=*/0.1));
  UmeConfig ume;
  ume.zones_per_dim = 8;
  ume.scale = 0.1;
  jobs.push_back(umeJob(PlatformId::kBananaPiSim, /*ranks=*/2, ume));
  LammpsConfig lammps;
  lammps.scale = 0.1;
  jobs.push_back(lammpsJob(PlatformId::kMilkVSim,
                           LammpsBenchmark::kLennardJones, /*ranks=*/2,
                           lammps));
  jobs.push_back(microbenchJob(PlatformId::kRocket1, "DP1d", 0.05));
  return jobs;
}

TEST(SweepDeterminismTest, ParallelSweepMatchesSerialSweepExactly) {
  const std::vector<JobSpec> jobs = mixedJobs();
  ASSERT_GE(jobs.size(), 12u);

  SweepOptions serial;
  serial.workers = 1;
  serial.use_cache = false;
  SweepOptions parallel;
  parallel.workers = 8;
  parallel.use_cache = false;

  const auto a = SweepEngine(serial).run(jobs);
  const auto b = SweepEngine(parallel).run(jobs);

  ASSERT_EQ(a.size(), jobs.size());
  ASSERT_EQ(b.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    EXPECT_EQ(b[i].label, a[i].label);
    EXPECT_EQ(b[i].fingerprint, a[i].fingerprint);
    EXPECT_EQ(b[i].result.cycles, a[i].result.cycles);
    EXPECT_EQ(b[i].result.retired, a[i].result.retired);
    EXPECT_EQ(b[i].result.messages, a[i].result.messages);
    // Bit-exact doubles: both derive from the same integer cycle counts.
    EXPECT_EQ(b[i].result.seconds, a[i].result.seconds);
    EXPECT_EQ(b[i].result.ipc, a[i].result.ipc);
    EXPECT_EQ(b[i].stats, a[i].stats);
  }
}

TEST(SweepDeterminismTest, RepeatedParallelSweepsAgree) {
  // Two 8-worker runs with different (nondeterministic) scheduling must
  // still agree with each other.
  const std::vector<JobSpec> jobs = mixedJobs();
  SweepOptions opts;
  opts.workers = 8;
  opts.use_cache = false;
  const auto a = SweepEngine(opts).run(jobs);
  const auto b = SweepEngine(opts).run(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(a[i].result.cycles, b[i].result.cycles) << jobs[i].label;
    EXPECT_EQ(a[i].stats, b[i].stats) << jobs[i].label;
  }
}

}  // namespace
}  // namespace bridge
