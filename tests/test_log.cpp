#include "sim/log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bridge {
namespace {

std::vector<std::pair<LogLevel, std::string>>& captured() {
  static std::vector<std::pair<LogLevel, std::string>> v;
  return v;
}

void captureSink(LogLevel level, const std::string& msg) {
  captured().emplace_back(level, msg);
}

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    captured().clear();
    setLogSink(&captureSink);
    setLogLevel(LogLevel::kWarn);
  }
  void TearDown() override {
    resetLogSink();
    setLogLevel(LogLevel::kWarn);
  }
};

TEST_F(LogTest, MessagesBelowLevelAreDropped) {
  BRIDGE_LOG(kDebug) << "invisible";
  BRIDGE_LOG(kInfo) << "also invisible";
  EXPECT_TRUE(captured().empty());
}

TEST_F(LogTest, MessagesAtOrAboveLevelAreEmitted) {
  BRIDGE_LOG(kWarn) << "warn " << 42;
  BRIDGE_LOG(kError) << "boom";
  ASSERT_EQ(captured().size(), 2u);
  EXPECT_EQ(captured()[0].second, "warn 42");
  EXPECT_EQ(captured()[1].first, LogLevel::kError);
}

TEST_F(LogTest, RaisingLevelEnablesVerboseRecords) {
  setLogLevel(LogLevel::kDebug);
  BRIDGE_LOG(kDebug) << "now visible";
  ASSERT_EQ(captured().size(), 1u);
  EXPECT_EQ(captured()[0].second, "now visible");
}

TEST_F(LogTest, StreamFormattingComposes) {
  setLogLevel(LogLevel::kInfo);
  BRIDGE_LOG(kInfo) << "cycle=" << 123 << " addr=0x" << std::hex << 255;
  ASSERT_EQ(captured().size(), 1u);
  EXPECT_EQ(captured()[0].second, "cycle=123 addr=0xff");
}

TEST_F(LogTest, NullSinkResetsToDefault) {
  setLogSink(nullptr);  // falls back to the default stderr sink
  // Nothing to assert beyond "does not crash"; restore capture.
  setLogSink(&captureSink);
  BRIDGE_LOG(kError) << "x";
  EXPECT_EQ(captured().size(), 1u);
}

}  // namespace
}  // namespace bridge
