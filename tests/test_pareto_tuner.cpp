// ParetoTuner behaviour: budget/ledger mechanics shared with the scalar
// Tuner, schema-v2 checkpoint resume reproducing the trajectory
// bit-identically, worker-count invariance of the archive through the real
// BiPlatformObjective, and the WeightedSumObjective bridge that lets the
// single-objective strategies search the combined space.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "tune/pareto.h"
#include "tune/tuner.h"

namespace bridge {
namespace {

namespace fs = std::filesystem;

// Two convex bowls with different minima: the nondominated front is the
// set of trade-offs between the targets. Counts scoreVector calls so the
// tests can tell fresh evaluations from ledger/checkpoint replays.
class TwoBowlObjective : public MultiObjective {
 public:
  std::size_t arity() const override { return 2; }

  std::vector<double> scoreVector(const Config& overrides) override {
    ++calls_;
    const double lat = overrides.getDouble("l2.latency", 0.0);
    const double banks = overrides.getDouble("l2.banks", 0.0);
    const auto bowl = [&](double t_lat, double t_banks) {
      return (lat - t_lat) * (lat - t_lat) +
             (banks - t_banks) * (banks - t_banks);
    };
    return {bowl(2.0, 1.0), bowl(14.0, 8.0)};
  }

  int calls() const { return calls_; }

 private:
  int calls_ = 0;
};

ParamSpace bowlSpace() {
  ParamSpace s;
  s.addLinear("l2.latency", 2, 14, 2);  // 7 values
  s.addPow2("l2.banks", 1, 8);          // 4 values
  return s;
}

std::string trajectoryString(const ParetoResult& r, const ParamSpace& s) {
  std::ostringstream os;
  for (const ParetoEntry& e : r.trajectory) {
    os << s.pointKey(e.point) << " ->";
    for (const double err : e.errors) {
      char buf[40];
      std::snprintf(buf, sizeof buf, " %.17g", err);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

std::string frontString(const std::vector<ParetoEntry>& front,
                        const ParamSpace& s) {
  std::ostringstream os;
  for (const ParetoEntry& e : front) {
    os << s.pointKey(e.point) << " ->";
    for (const double err : e.errors) {
      char buf[40];
      std::snprintf(buf, sizeof buf, " %.17g", err);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

std::string checkpointPath(const char* tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("bridge-pareto-" + std::string(tag));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return (dir / "checkpoint.json").string();
}

TEST(ParetoTunerTest, FindsBothExtremesAndAMutuallyNondominatedFront) {
  const ParamSpace space = bowlSpace();
  TwoBowlObjective obj;
  ParetoOptions opts;
  opts.budget = 28;  // the whole 7x4 space
  ParetoTuner tuner(space, &obj, opts);
  const ParetoResult r = tuner.run({0, 0});

  ASSERT_FALSE(r.front.empty());
  // With the full space evaluated, both bowl minima are on the front.
  bool has_min0 = false, has_min1 = false;
  for (const ParetoEntry& e : r.front) {
    if (e.errors[0] == 0.0) has_min0 = true;
    if (e.errors[1] == 0.0) has_min1 = true;
    for (const ParetoEntry& other : r.front) {
      EXPECT_FALSE(dominates(other.errors, e.errors));
    }
  }
  EXPECT_TRUE(has_min0);
  EXPECT_TRUE(has_min1);
  // The bounded exploration phase may stop a step short of sweeping every
  // last point; it must still have covered most of the 28-point space.
  EXPECT_GE(r.evaluations, 20u);
  // Revisits are free: every distinct point scored exactly once.
  EXPECT_EQ(obj.calls(), static_cast<int>(r.evaluations));
  EXPECT_EQ(r.objective_calls, r.evaluations);
}

TEST(ParetoTunerTest, BudgetIsEnforcedAndSeedIsDeterministic) {
  const ParamSpace space = bowlSpace();
  ParetoOptions opts;
  opts.budget = 9;
  opts.seed = 5;

  TwoBowlObjective a;
  const ParetoResult ra = ParetoTuner(space, &a, opts).run({3, 2});
  TwoBowlObjective b;
  const ParetoResult rb = ParetoTuner(space, &b, opts).run({3, 2});
  EXPECT_EQ(ra.evaluations, 9u);
  EXPECT_EQ(ra.stop_reason, "budget");
  EXPECT_EQ(trajectoryString(ra, space), trajectoryString(rb, space));
  EXPECT_EQ(frontString(ra.front, space), frontString(rb.front, space));
}

TEST(ParetoTunerTest, CheckpointResumeIsBitIdentical) {
  const ParamSpace space = bowlSpace();
  const std::string ckpt = checkpointPath("resume");

  // Uninterrupted reference run.
  TwoBowlObjective ref;
  ParetoOptions opts;
  opts.budget = 20;
  const ParetoResult full = ParetoTuner(space, &ref, opts).run({0, 0});

  // Interrupted at 6 evaluations, checkpointing.
  TwoBowlObjective first;
  ParetoOptions interrupted = opts;
  interrupted.budget = 6;
  interrupted.checkpoint = ckpt;
  const ParetoResult partial =
      ParetoTuner(space, &first, interrupted).run({0, 0});
  EXPECT_EQ(partial.evaluations, 6u);
  EXPECT_EQ(first.calls(), 6);

  // Resume with the full budget: trajectory, front, and fresh-call count
  // must match the uninterrupted run exactly.
  TwoBowlObjective second;
  ParetoOptions resumed = opts;
  resumed.checkpoint = ckpt;
  int fresh = 0, replayed = 0;
  resumed.on_eval = [&](std::size_t, const ParetoEntry&, bool,
                        bool is_fresh) { (is_fresh ? fresh : replayed)++; };
  const ParetoResult cont = ParetoTuner(space, &second, resumed).run({0, 0});
  EXPECT_EQ(trajectoryString(cont, space), trajectoryString(full, space));
  EXPECT_EQ(frontString(cont.front, space), frontString(full.front, space));
  EXPECT_EQ(replayed, 6);
  EXPECT_EQ(second.calls(), static_cast<int>(full.objective_calls) - 6);
  EXPECT_EQ(fresh, second.calls());
}

TEST(ParetoTunerTest, MismatchedOrCorruptCheckpointIsRejected) {
  const ParamSpace space = bowlSpace();
  const std::string ckpt = checkpointPath("mismatch");
  {
    TwoBowlObjective obj;
    ParetoOptions opts;
    opts.budget = 4;
    opts.checkpoint = ckpt;
    ParetoTuner(space, &obj, opts).run({0, 0});
  }
  // Different seed.
  {
    TwoBowlObjective obj;
    ParetoOptions opts;
    opts.budget = 4;
    opts.seed = 99;
    opts.checkpoint = ckpt;
    ParetoTuner tuner(space, &obj, opts);
    EXPECT_THROW(tuner.run({0, 0}), std::runtime_error);
  }
  // Different archive capacity (part of the schema identity).
  {
    TwoBowlObjective obj;
    ParetoOptions opts;
    opts.budget = 4;
    opts.archive_cap = 8;
    opts.checkpoint = ckpt;
    ParetoTuner tuner(space, &obj, opts);
    EXPECT_THROW(tuner.run({0, 0}), std::runtime_error);
  }
  // Different space.
  {
    ParamSpace other;
    other.addPow2("l2.banks", 1, 8);
    TwoBowlObjective obj;
    ParetoOptions opts;
    opts.budget = 4;
    opts.checkpoint = ckpt;
    ParetoTuner tuner(other, &obj, opts);
    EXPECT_THROW(tuner.run({0}), std::runtime_error);
  }
  // A scalar (v1) checkpoint is not a pareto (v2) checkpoint.
  {
    std::ofstream out(ckpt, std::ios::trunc);
    out << "{\"version\": 1, \"strategy\": \"cd\", \"space\": \"x\", "
           "\"seed\": 1, \"seed_probes\": 0, \"evals\": []}\n";
  }
  {
    TwoBowlObjective obj;
    ParetoOptions opts;
    opts.budget = 4;
    opts.checkpoint = ckpt;
    ParetoTuner tuner(space, &obj, opts);
    EXPECT_THROW(tuner.run({0, 0}), std::runtime_error);
  }
  // Corrupt file.
  {
    std::ofstream out(ckpt, std::ios::trunc);
    out << "{ not json";
  }
  {
    TwoBowlObjective obj;
    ParetoOptions opts;
    opts.budget = 4;
    opts.checkpoint = ckpt;
    ParetoTuner tuner(space, &obj, opts);
    EXPECT_THROW(tuner.run({0, 0}), std::runtime_error);
  }
}

// The real bi-platform objective through the sweep engine: the archive must
// be identical whether the probe kernels fan out over 1 worker or 8 — the
// `--jobs` invariance the ISSUE requires (and the TSan smoke target
// re-runs under -DBRIDGE_SANITIZE=thread).
TEST(ParetoTunerTest, ArchiveIsWorkerCountInvariant) {
  // A 2x2 slice of the combined space keeps this fast: one knob per side.
  ParamSpace space;
  space.addPow2("rocket/l2.banks", 2, 4).addPow2("boom/l2.banks", 4, 8);

  auto runWith = [&](unsigned workers) {
    BiPlatformOptions bopts;
    bopts.kernels = {"ED1", "ML2"};
    bopts.scale = 0.05;
    SweepOptions sweep;
    sweep.workers = workers;
    sweep.use_cache = false;  // force real concurrent simulation
    BiPlatformObjective objective(bopts, sweep);
    ParetoOptions opts;
    opts.budget = 4;  // the whole slice
    ParetoTuner tuner(space, &objective, opts);
    return tuner.run({0, 0});
  };

  const ParetoResult serial = runWith(1);
  const ParetoResult parallel = runWith(8);
  EXPECT_EQ(trajectoryString(serial, space),
            trajectoryString(parallel, space));
  EXPECT_EQ(frontString(serial.front, space),
            frontString(parallel.front, space));
  for (const ParetoEntry& e : serial.front) {
    ASSERT_EQ(e.errors.size(), 2u);
    EXPECT_GT(e.errors[0], 0.0);  // real models never match silicon exactly
    EXPECT_GT(e.errors[1], 0.0);
  }
}

TEST(WeightedSumObjectiveTest, ScalarizesForTheSingleObjectiveStrategies) {
  const ParamSpace space = bowlSpace();
  TwoBowlObjective multi;

  // All weight on objective 0: coordinate descent must land on its bowl.
  WeightedSumObjective w0(&multi, {1.0, 0.0});
  TuneOptions opts;
  opts.budget = 100;
  const TuneResult r0 =
      CoordinateDescentTuner(space, &w0, opts).run({3, 2});
  EXPECT_DOUBLE_EQ(r0.best_error, 0.0);
  EXPECT_EQ(space.pointKey(r0.best), "l2.latency=2,l2.banks=1");

  // All weight on objective 1: the other bowl.
  WeightedSumObjective w1(&multi, {0.0, 1.0});
  const TuneResult r1 =
      CoordinateDescentTuner(space, &w1, opts).run({3, 2});
  EXPECT_DOUBLE_EQ(r1.best_error, 0.0);
  EXPECT_EQ(space.pointKey(r1.best), "l2.latency=14,l2.banks=8");

  // A mixture lands between the two minima.
  WeightedSumObjective mix(&multi, {1.0, 1.0});
  const TuneResult rm =
      CoordinateDescentTuner(space, &mix, opts).run({0, 0});
  const Config best = space.overrides(rm.best);
  const double lat = best.getDouble("l2.latency", 0.0);
  EXPECT_GT(lat, 2.0);
  EXPECT_LT(lat, 14.0);
}

TEST(WeightedSumObjectiveTest, RejectsInvalidWeights) {
  TwoBowlObjective multi;
  EXPECT_THROW(WeightedSumObjective(&multi, {1.0}), std::invalid_argument);
  EXPECT_THROW(WeightedSumObjective(&multi, {1.0, -0.5}),
               std::invalid_argument);
  EXPECT_THROW(WeightedSumObjective(&multi, {0.0, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace bridge
