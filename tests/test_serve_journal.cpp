// Write-ahead admission journal unit tests (DESIGN.md §5k): the sealed
// record codec (round-trip, torn-tail and corrupt-crc detection), the
// live-set replay semantics across close/reopen, rotation-as-compaction,
// completion compaction, and the fsck/--repair audit that cache_fsck runs
// over <cache>/journal.
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "sweep/fingerprint.h"
#include "sweep/job.h"

namespace bridge::serve {
namespace {

namespace fs = std::filesystem;

class ServeJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("bridge-journal-") + info->name() + "-" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string journalDir(const char* tag = "journal") const {
    return (dir_ / tag).string();
  }

  static std::vector<std::string> segmentFiles(const std::string& dir) {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("seg-", 0) == 0 &&
          name.size() > 4 && name.find(".wal") == name.size() - 4) {
        files.push_back(name);
      }
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  static std::string readFile(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  fs::path dir_;
};

JobSpec testJob(unsigned i) {
  // Distinct seeds give distinct fingerprints; quarter scale keeps any
  // accidental execution cheap (these tests never execute).
  return microbenchJob(PlatformId::kRocket1, i % 2 == 0 ? "MM" : "MIM", 0.25,
                       100 + i);
}

TEST_F(ServeJournalTest, RecordCodecRoundTrips) {
  JournalRecord admit;
  admit.type = JournalRecord::Type::kAdmit;
  admit.job = testJob(1);
  admit.fingerprint = jobFingerprint(admit.job);

  JournalRecord done;
  done.type = JournalRecord::Type::kDone;
  done.fingerprint = admit.fingerprint;

  const std::string text = AdmissionJournal::encodeRecord(admit) +
                           AdmissionJournal::encodeRecord(done);

  std::size_t pos = 0;
  JournalRecord out;
  ASSERT_EQ(AdmissionJournal::decodeRecord(text, &pos, &out), 1);
  EXPECT_EQ(out.type, JournalRecord::Type::kAdmit);
  EXPECT_EQ(out.fingerprint, admit.fingerprint);
  // The spec survives byte-exactly: same canonical JSON, same fingerprint —
  // a replayed job is *the* job, overrides included.
  EXPECT_EQ(jobSpecToJson(out.job), jobSpecToJson(admit.job));
  EXPECT_EQ(jobFingerprint(out.job), admit.fingerprint);

  ASSERT_EQ(AdmissionJournal::decodeRecord(text, &pos, &out), 1);
  EXPECT_EQ(out.type, JournalRecord::Type::kDone);
  EXPECT_EQ(out.fingerprint, done.fingerprint);

  // Clean end of input, not a tear.
  EXPECT_EQ(AdmissionJournal::decodeRecord(text, &pos, &out), 0);
  EXPECT_EQ(pos, text.size());
}

TEST_F(ServeJournalTest, DecodeDetectsTornAndCorruptTails) {
  JournalRecord admit;
  admit.type = JournalRecord::Type::kAdmit;
  admit.job = testJob(2);
  admit.fingerprint = jobFingerprint(admit.job);
  const std::string first = AdmissionJournal::encodeRecord(admit);
  const std::string second = AdmissionJournal::encodeRecord(admit);

  // Truncation mid-second-record: the first record parses, the tear is
  // reported exactly at its end.
  const std::string torn = first + second.substr(0, second.size() / 2);
  std::size_t pos = 0;
  JournalRecord out;
  ASSERT_EQ(AdmissionJournal::decodeRecord(torn, &pos, &out), 1);
  EXPECT_EQ(AdmissionJournal::decodeRecord(torn, &pos, &out), -1);
  EXPECT_EQ(pos, first.size());

  // A flipped payload byte fails the crc even when the length is intact.
  std::string corrupt = first;
  corrupt[corrupt.size() / 2] ^= 0x20;
  pos = 0;
  EXPECT_EQ(AdmissionJournal::decodeRecord(corrupt, &pos, &out), -1);

  // Garbage that is not even a header is a tear at offset 0.
  pos = 0;
  EXPECT_EQ(AdmissionJournal::decodeRecord("not a journal", &pos, &out), -1);
  EXPECT_EQ(pos, 0u);
}

TEST_F(ServeJournalTest, LiveSetSurvivesReopenInAdmissionOrder) {
  const JobSpec a = testJob(3), b = testJob(4), c = testJob(5);
  const std::string fa = jobFingerprint(a), fb = jobFingerprint(b),
                    fc = jobFingerprint(c);
  {
    AdmissionJournal journal;
    std::string error;
    ASSERT_TRUE(journal.open(journalDir(), &error)) << error;
    EXPECT_TRUE(journal.recovered().empty());
    journal.admit(fa, a);
    journal.admit(fb, b);
    journal.admit(fc, c);
    journal.complete(fb);  // b is done; a and c die with this "daemon"
    EXPECT_EQ(journal.liveCount(), 2u);
  }
  AdmissionJournal reopened;
  std::string error;
  ASSERT_TRUE(reopened.open(journalDir(), &error)) << error;
  const std::vector<JournalRecord>& recovered = reopened.recovered();
  ASSERT_EQ(recovered.size(), 2u);
  // Admission order is preserved — replay re-admits in the order the dead
  // daemon accepted the work.
  EXPECT_EQ(recovered[0].fingerprint, fa);
  EXPECT_EQ(recovered[1].fingerprint, fc);
  EXPECT_EQ(jobFingerprint(recovered[0].job), fa);
  EXPECT_EQ(jobFingerprint(recovered[1].job), fc);
  EXPECT_EQ(reopened.liveCount(), 2u);

  // Duplicate admits collapse (the map semantics admitJobs relies on when
  // it journals attached jobs too).
  reopened.admit(fa, a);
  EXPECT_EQ(reopened.liveCount(), 2u);
}

TEST_F(ServeJournalTest, RotationReseedsLiveSetAndRemovesOldSegments) {
  AdmissionJournal journal;
  std::string error;
  ASSERT_TRUE(journal.open(journalDir(), &error)) << error;
  journal.setRotateBytes(1);  // every append overflows -> rotate each time
  const JobSpec a = testJob(6), b = testJob(7);
  const std::string fa = jobFingerprint(a), fb = jobFingerprint(b);
  journal.admit(fa, a);
  journal.admit(fb, b);
  // Rotation is compaction: only the freshly seeded segment remains.
  EXPECT_EQ(segmentFiles(journalDir()).size(), 1u);
  journal.close();

  AdmissionJournal reopened;
  ASSERT_TRUE(reopened.open(journalDir(), &error)) << error;
  EXPECT_EQ(reopened.recovered().size(), 2u);
  EXPECT_EQ(reopened.liveCount(), 2u);
}

TEST_F(ServeJournalTest, CompletionDrainTriggersCompaction) {
  AdmissionJournal journal;
  std::string error;
  ASSERT_TRUE(journal.open(journalDir(), &error)) << error;
  const JobSpec a = testJob(8);
  const std::string fa = jobFingerprint(a);
  journal.admit(fa, a);
  journal.complete(fa);  // live set drained -> compact to an empty segment
  EXPECT_EQ(journal.liveCount(), 0u);
  const std::vector<std::string> segs = segmentFiles(journalDir());
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(fs::file_size(fs::path(journalDir()) / segs[0]), 0u);
  journal.close();

  AdmissionJournal reopened;
  ASSERT_TRUE(reopened.open(journalDir(), &error)) << error;
  EXPECT_TRUE(reopened.recovered().empty());
}

TEST_F(ServeJournalTest, FsckReportsAndRepairsTornTailsAndLitter) {
  const JobSpec a = testJob(9), b = testJob(10);
  const std::string fa = jobFingerprint(a), fb = jobFingerprint(b);
  {
    AdmissionJournal journal;
    std::string error;
    ASSERT_TRUE(journal.open(journalDir(), &error)) << error;
    journal.admit(fa, a);
    journal.admit(fb, b);
    journal.complete(fa);
  }
  const std::vector<std::string> segs = segmentFiles(journalDir());
  ASSERT_FALSE(segs.empty());
  const fs::path active = fs::path(journalDir()) / segs.back();

  // Simulate a crash mid-append (torn tail) and an interrupted rotation
  // (stale temp).
  {
    std::ofstream out(active, std::ios::binary | std::ios::app);
    out << "#bridge-journal-1 admit len=999 crc=deadbeefdeadbeef\ntrunc";
  }
  const std::size_t torn_bytes =
      std::string("#bridge-journal-1 admit len=999 crc=deadbeefdeadbeef\n"
                  "trunc")
          .size();
  { std::ofstream out(fs::path(journalDir()) / "seg-00000099.wal.tmp.123"); }

  const JournalFsck report = AdmissionJournal::fsck(journalDir(), false);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.torn, 1u);
  EXPECT_EQ(report.stale_tmp, 1u);
  EXPECT_EQ(report.live, 1u);  // b admitted, never completed
  ASSERT_FALSE(report.segs.empty());
  EXPECT_TRUE(report.segs.back().torn);
  EXPECT_EQ(report.segs.back().torn_bytes, torn_bytes);
  EXPECT_EQ(report.removed, 0u);  // audit-only

  const std::size_t before_repair = fs::file_size(active);
  const JournalFsck repaired = AdmissionJournal::fsck(journalDir(), true);
  EXPECT_EQ(repaired.torn, 0u);      // truncated tails no longer count
  EXPECT_EQ(repaired.removed, 2u);   // tail truncation + stale tmp
  EXPECT_LT(fs::file_size(active), before_repair);

  // Repair is idempotent and leaves a clean journal whose live set is
  // intact — a daemon reopening it recovers exactly b.
  const JournalFsck again = AdmissionJournal::fsck(journalDir(), true);
  EXPECT_TRUE(again.clean());
  EXPECT_EQ(again.live, 1u);
  AdmissionJournal reopened;
  std::string error;
  ASSERT_TRUE(reopened.open(journalDir(), &error)) << error;
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.recovered()[0].fingerprint, fb);
}

TEST_F(ServeJournalTest, FsckSweepsCompactedLitter) {
  // Fabricate a sealed, fully-resolved older segment next to a live active
  // one: the litter a crash leaves when the daemon died after completing
  // a segment's admits but before (or during) the compaction rotation.
  const JobSpec a = testJob(11), b = testJob(12);
  const std::string fa = jobFingerprint(a), fb = jobFingerprint(b);
  fs::create_directories(journalDir());
  JournalRecord admit_a{JournalRecord::Type::kAdmit, fa, a};
  JournalRecord done_a{JournalRecord::Type::kDone, fa, {}};
  JournalRecord admit_b{JournalRecord::Type::kAdmit, fb, b};
  {
    std::ofstream out(fs::path(journalDir()) / "seg-00000001.wal",
                      std::ios::binary);
    out << AdmissionJournal::encodeRecord(admit_a)
        << AdmissionJournal::encodeRecord(done_a);
  }
  {
    std::ofstream out(fs::path(journalDir()) / "seg-00000002.wal",
                      std::ios::binary);
    out << AdmissionJournal::encodeRecord(admit_b);
  }

  const JournalFsck report = AdmissionJournal::fsck(journalDir(), false);
  EXPECT_TRUE(report.clean());  // litter is inert, like shard locks
  EXPECT_EQ(report.compacted, 1u);
  EXPECT_EQ(report.live, 1u);

  const JournalFsck repaired = AdmissionJournal::fsck(journalDir(), true);
  EXPECT_EQ(repaired.compacted, 1u);
  EXPECT_EQ(segmentFiles(journalDir()).size(), 1u);
  EXPECT_EQ(segmentFiles(journalDir())[0], "seg-00000002.wal");
}

TEST_F(ServeJournalTest, DefaultDirHonoursEnvKnob) {
  ::unsetenv("BRIDGE_JOURNAL");
  EXPECT_EQ(AdmissionJournal::defaultDir("/tmp/cache"), "/tmp/cache/journal");
  EXPECT_EQ(AdmissionJournal::defaultDir(""), "");  // cache off -> no journal

  ::setenv("BRIDGE_JOURNAL", "off", 1);
  EXPECT_EQ(AdmissionJournal::defaultDir("/tmp/cache"), "");
  ::setenv("BRIDGE_JOURNAL", "0", 1);
  EXPECT_EQ(AdmissionJournal::defaultDir("/tmp/cache"), "");
  ::setenv("BRIDGE_JOURNAL", "/elsewhere/wal", 1);
  EXPECT_EQ(AdmissionJournal::defaultDir("/tmp/cache"), "/elsewhere/wal");
  ::unsetenv("BRIDGE_JOURNAL");
}

}  // namespace
}  // namespace bridge::serve
