#include "cache/llc.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

LlcParams smallParams(LlcMode mode) {
  LlcParams p;
  p.mode = mode;
  p.sets = 64;
  p.ways = 4;
  p.sram_latency = 8;
  p.tag_latency = 6;
  p.data_latency = 24;
  p.banks = 2;
  p.bank_busy = 4;
  return p;
}

TEST(LlcSlice, SimplifiedModeFlatLatency) {
  LlcSlice llc(smallParams(LlcMode::kSimplifiedSram));
  const auto miss = llc.access(0x1000, false, 100);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.complete, 108u);
  const auto hit = llc.access(0x1000, false, 200);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.complete, 208u);  // same flat latency, hit or miss lookup
}

TEST(LlcSlice, RealisticHitSlowerThanSimplified) {
  LlcSlice simple(smallParams(LlcMode::kSimplifiedSram));
  LlcSlice real(smallParams(LlcMode::kRealistic));
  simple.access(0x1000, false, 0);
  real.access(0x1000, false, 0);
  const auto s = simple.access(0x1000, false, 100);
  const auto r = real.access(0x1000, false, 100);
  ASSERT_TRUE(s.hit);
  ASSERT_TRUE(r.hit);
  // Tag + data pipeline beats the idealized SRAM claim — the FireSim LLC
  // simplification the paper calls out.
  EXPECT_GT(r.complete, s.complete);
}

TEST(LlcSlice, RealisticMissResolvesAtTagLatency) {
  LlcSlice real(smallParams(LlcMode::kRealistic));
  const auto miss = real.access(0x1000, false, 100);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.complete, 106u);  // tag lookup only; DRAM comes after
}

TEST(LlcSlice, RealisticBankContention) {
  LlcSlice real(smallParams(LlcMode::kRealistic));
  real.access(0x0000, false, 0);
  real.access(0x0080, false, 0);  // other bank (line index 2 % 2 banks)
  real.access(0x1000, false, 0);
  // Two same-bank hits issued at the same cycle: the second waits.
  real.access(0x0000, false, 1000);
  const auto second = real.access(0x1000, false, 1000);  // same bank 0
  ASSERT_TRUE(second.hit);
  EXPECT_GT(second.complete, 1000u + 6u + 24u);
}

TEST(LlcSlice, DirtyEvictionReportsWriteback) {
  LlcParams p = smallParams(LlcMode::kSimplifiedSram);
  p.sets = 1;
  p.ways = 1;
  LlcSlice llc(p);
  llc.access(0x1000, /*is_store=*/true, 0);
  const auto a = llc.access(0x2000, false, 10);
  EXPECT_TRUE(a.writeback);
  EXPECT_EQ(a.victim_line, 0x1000u);
}

}  // namespace
}  // namespace bridge
