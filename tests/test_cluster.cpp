#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "platforms/platforms.h"
#include "trace/kernel.h"
#include "workloads/npb.h"

namespace bridge {
namespace {

TraceSourcePtr compute(int iters) {
  KernelBuilder b("compute");
  b.segment(iters).add(alu(intReg(5), intReg(6)));
  return b.build();
}

ClusterConfig twoByTwo() {
  ClusterConfig c;
  c.nodes = 2;
  c.ranks_per_node = 2;
  return c;
}

TEST(Cluster, ComputeOnlyRunsAllRanks) {
  const ClusterRunResult r = runClusterProgram(
      makePlatform(PlatformId::kBananaPiSim, 2), twoByTwo(),
      [](int, int) { return compute(1000); });
  EXPECT_EQ(r.rank_cycles.size(), 4u);
  EXPECT_GT(r.retired, 4u * 1000u);
  EXPECT_EQ(r.inter_messages, 0u);
}

TEST(Cluster, RejectsUndersizedNodes) {
  ClusterConfig c;
  c.nodes = 2;
  c.ranks_per_node = 4;
  EXPECT_THROW(
      runClusterProgram(makePlatform(PlatformId::kBananaPiSim, 2), c,
                        [](int, int) { return compute(10); }),
      std::invalid_argument);
}

TEST(Cluster, IntraNodeMessagesAvoidTheNetwork) {
  // Ranks 0 and 1 live on node 0: their message is intra-node.
  const ClusterRunResult r = runClusterProgram(
      makePlatform(PlatformId::kBananaPiSim, 2), twoByTwo(),
      [](int rank, int) {
        auto seq = std::make_unique<SequenceTrace>("p");
        if (rank == 0) {
          seq->appendOp(makeMpiOp(MpiKind::kSend, 1, 4096, 0));
        } else if (rank == 1) {
          seq->appendOp(makeMpiOp(MpiKind::kRecv, 0, 4096, 0));
        } else {
          seq->append(compute(10));
        }
        return seq;
      });
  EXPECT_GE(r.intra_messages, 1u);
  EXPECT_EQ(r.inter_messages, 0u);
}

TEST(Cluster, CrossNodeMessagesPayLatencyAndCountAsInterNode) {
  // Rank 0 (node 0) -> rank 2 (node 1).
  auto run = [](double latency_us) {
    ClusterConfig c;
    c.nodes = 2;
    c.ranks_per_node = 2;
    c.network.latency_us = latency_us;
    return runClusterProgram(
        makePlatform(PlatformId::kBananaPiSim, 2), c,
        [](int rank, int) {
          auto seq = std::make_unique<SequenceTrace>("p");
          if (rank == 0) {
            seq->appendOp(makeMpiOp(MpiKind::kSend, 2, 65536, 0));
          } else if (rank == 2) {
            seq->appendOp(makeMpiOp(MpiKind::kRecv, 0, 65536, 0));
          }
          return seq;
        });
  };
  const ClusterRunResult fast = run(1.0);
  const ClusterRunResult slow = run(50.0);
  EXPECT_EQ(fast.inter_messages, 1u);
  EXPECT_EQ(fast.inter_bytes, 65536u);
  EXPECT_GT(slow.cycles, fast.cycles + 10000);  // ~49us at 1.6 GHz
}

TEST(Cluster, BandwidthBoundsLargeTransfers) {
  auto run = [](double gbps) {
    ClusterConfig c;
    c.nodes = 2;
    c.ranks_per_node = 1;
    c.network.bandwidth_gbps = gbps;
    return runClusterProgram(
               makePlatform(PlatformId::kBananaPiSim, 1), c,
               [](int rank, int) {
                 auto seq = std::make_unique<SequenceTrace>("p");
                 if (rank == 0) {
                   seq->appendOp(makeMpiOp(MpiKind::kSend, 1, 8 << 20, 0));
                 } else {
                   seq->appendOp(makeMpiOp(MpiKind::kRecv, 0, 8 << 20, 0));
                 }
                 return seq;
               })
        .cycles;
  };
  // 8 MiB at 10 vs 100 Gbps: ~6.7ms vs ~0.67ms of wire time.
  EXPECT_GT(run(10.0), run(100.0));
}

TEST(Cluster, CollectivesSpanNodes) {
  const ClusterRunResult r = runClusterProgram(
      makePlatform(PlatformId::kBananaPiSim, 2), twoByTwo(),
      [](int, int) {
        auto seq = std::make_unique<SequenceTrace>("p");
        seq->appendOp(makeMpiOp(MpiKind::kAllreduce, 0, 4096));
        return seq;
      });
  EXPECT_GT(r.inter_messages, 0u);  // the binomial tree crosses nodes
  EXPECT_GT(r.intra_messages, 0u);
}

TEST(Cluster, MismatchedCollectivesThrow) {
  EXPECT_THROW(
      runClusterProgram(makePlatform(PlatformId::kBananaPiSim, 2),
                        twoByTwo(),
                        [](int rank, int) {
                          auto seq = std::make_unique<SequenceTrace>("p");
                          seq->appendOp(makeMpiOp(
                              rank == 0 ? MpiKind::kBarrier
                                        : MpiKind::kAllreduce,
                              0, 8));
                          return seq;
                        }),
      std::runtime_error);
}

TEST(Cluster, DeadlockDetected) {
  EXPECT_THROW(
      runClusterProgram(makePlatform(PlatformId::kBananaPiSim, 2),
                        twoByTwo(),
                        [](int, int) {
                          auto seq = std::make_unique<SequenceTrace>("p");
                          seq->appendOp(
                              makeMpiOp(MpiKind::kRecv, kAnyPeer, 8, 0));
                          return seq;
                        }),
      std::runtime_error);
}

TEST(Cluster, EpWeakScalingAcrossNodes) {
  // EP with its single tiny allreduce scales nearly perfectly: doubling
  // nodes with the same total work halves the runtime.
  NpbConfig cfg;
  cfg.scale = 0.3;
  auto run = [&](unsigned nodes) {
    ClusterConfig c;
    c.nodes = nodes;
    c.ranks_per_node = 2;
    return runClusterProgram(
               makePlatform(PlatformId::kBananaPiSim, 2), c,
               [&](int rank, int nranks) {
                 return makeNpbRank(NpbBenchmark::kEP, rank, nranks, cfg);
               })
        .cycles;
  };
  const Cycle one = run(1);
  const Cycle two = run(2);
  EXPECT_LT(two, one);
  EXPECT_GT(static_cast<double>(one) / two, 1.6);
}

TEST(Cluster, NodeOfMapsBlockwise) {
  ClusterSimulation sim(makePlatform(PlatformId::kBananaPiSim, 2),
                        twoByTwo(),
                        [](int, int) { return compute(1); });
  EXPECT_EQ(sim.numRanks(), 4);
  EXPECT_EQ(sim.nodeOf(0), 0u);
  EXPECT_EQ(sim.nodeOf(1), 0u);
  EXPECT_EQ(sim.nodeOf(2), 1u);
  EXPECT_EQ(sim.nodeOf(3), 1u);
}

}  // namespace
}  // namespace bridge
