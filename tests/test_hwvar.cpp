// Hardware-variability suite (`ctest -L hwvar`, DESIGN §5j): spec parsing
// and validation, the pure-hash DVFS/preemption decision functions,
// HwVarCore's interval arithmetic against a deterministic fake inner core
// (stretch, ticks, preemption, the thermal latch, external-skip hygiene),
// fingerprint separation (a variability run can never alias the
// deterministic machine in the cache or the serve dedup table),
// engine-level rewrite semantics, bit-determinism across worker counts and
// reruns, the variability-study spread harness, the distribution-matching
// objective, and the remote-worker round trip (a pinned hwvar spec
// executes identically on a worker whose own environment says otherwise).
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "harness/variability.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "sim/hwvar/hwvar.h"
#include "sim/hwvar/hwvar_core.h"
#include "sim/stats.h"
#include "sweep/fingerprint.h"
#include "sweep/job.h"
#include "sweep/sweep.h"
#include "tune/dist_objective.h"
#include "tune/tuner.h"

namespace bridge {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Spec parsing and validation.

TEST(HwVarSpecTest, ParsesOnOffAndKeyValueForms) {
  HwVarParams p;
  std::string error;

  ASSERT_TRUE(parseHwVarSpec("off", &p, &error)) << error;
  EXPECT_FALSE(p.enabled);
  ASSERT_TRUE(parseHwVarSpec("0", &p, &error)) << error;
  EXPECT_FALSE(p.enabled);

  ASSERT_TRUE(parseHwVarSpec("on", &p, &error)) << error;
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.interval_ops, HwVarParams{}.interval_ops);

  ASSERT_TRUE(parseHwVarSpec(
                  "interval=2000,seed=9,placement=3,levels=6,minfreq=55,"
                  "shift=250,dvfslat=500,heat=400,cool=350,threshold=9000,"
                  "tick=1000,tickcycles=90,preempt=40,preemptcycles=7000",
                  &p, &error))
      << error;
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.interval_ops, 2000u);
  EXPECT_EQ(p.seed, 9u);
  EXPECT_EQ(p.placement, 3u);
  EXPECT_EQ(p.levels, 6u);
  EXPECT_EQ(p.min_freq_pct, 55u);
  EXPECT_EQ(p.dvfs_shift_pm, 250u);
  EXPECT_EQ(p.dvfs_latency_cycles, 500u);
  EXPECT_EQ(p.therm_heat_pm, 400u);
  EXPECT_EQ(p.therm_cool_pm, 350u);
  EXPECT_EQ(p.therm_threshold, 9000u);
  EXPECT_EQ(p.tick_ops, 1000u);
  EXPECT_EQ(p.tick_cycles, 90u);
  EXPECT_EQ(p.preempt_pm, 40u);
  EXPECT_EQ(p.preempt_cycles, 7000u);

  // Keys are optional and unordered; unspecified ones keep defaults.
  ASSERT_TRUE(parseHwVarSpec("threshold=0,interval=500", &p, &error)) << error;
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.interval_ops, 500u);
  EXPECT_EQ(p.therm_threshold, 0u);
  EXPECT_EQ(p.levels, HwVarParams{}.levels);
}

TEST(HwVarSpecTest, RejectsUnknownKeysAndMalformedValues) {
  HwVarParams p;
  std::string error;
  EXPECT_FALSE(parseHwVarSpec("governor=ondemand", &p, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parseHwVarSpec("interval=abc", &p, &error));
  EXPECT_FALSE(parseHwVarSpec("interval=", &p, &error));
  EXPECT_FALSE(parseHwVarSpec("interval", &p, &error));
  EXPECT_FALSE(parseHwVarSpec("", &p, &error));
  // A parseable spec that fails validation is a parse error too.
  EXPECT_FALSE(parseHwVarSpec("minfreq=0", &p, &error));
  EXPECT_FALSE(parseHwVarSpec("shift=1001", &p, &error));
}

TEST(HwVarSpecTest, SpecStringRoundTrips) {
  HwVarParams p;
  p.enabled = true;
  p.seed = 11;
  p.interval_ops = 4321;
  p.placement = 2;
  p.levels = 5;
  p.min_freq_pct = 45;
  p.dvfs_shift_pm = 333;
  p.therm_threshold = 777;
  p.tick_ops = 0;
  p.preempt_pm = 999;
  HwVarParams back;
  ASSERT_TRUE(parseHwVarSpec(p.specString(), &back, nullptr));
  EXPECT_EQ(back, p);

  HwVarParams off;
  EXPECT_EQ(off.specString(), "off");
  ASSERT_TRUE(parseHwVarSpec(off.specString(), &back, nullptr));
  EXPECT_EQ(back, off);
}

TEST(HwVarSpecTest, ValidateCatchesNonsense) {
  HwVarParams p;
  p.enabled = true;
  p.interval_ops = 0;
  std::string why;
  EXPECT_FALSE(p.validate(&why));
  EXPECT_FALSE(why.empty());

  p = HwVarParams{};
  p.enabled = true;
  p.levels = 0;
  EXPECT_FALSE(p.validate(nullptr));

  p = HwVarParams{};
  p.enabled = true;
  p.min_freq_pct = 101;
  EXPECT_FALSE(p.validate(nullptr));

  p = HwVarParams{};
  p.enabled = true;
  p.preempt_pm = 2000;
  EXPECT_FALSE(p.validate(nullptr));

  // Disabled params are always valid, whatever the numbers say.
  p.enabled = false;
  EXPECT_TRUE(p.validate(nullptr));
}

TEST(HwVarSpecTest, EnvKnobDegradesToDeterministicOnTypos) {
  ::setenv("BRIDGE_HWVAR", "interval=2000,preempt=50", 1);
  HwVarParams p = HwVarParams::fromEnv();
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.interval_ops, 2000u);
  EXPECT_EQ(p.preempt_pm, 50u);

  // A typo in the environment must never crash a sweep: warn + disable.
  ::setenv("BRIDGE_HWVAR", "intervl=2000", 1);
  p = HwVarParams::fromEnv();
  EXPECT_FALSE(p.enabled);

  ::unsetenv("BRIDGE_HWVAR");
  p = HwVarParams::fromEnv();
  EXPECT_FALSE(p.enabled);
}

// ---------------------------------------------------------------------------
// Pure-hash decision functions.

TEST(HwVarHashTest, RollsAreDeterministicAndStreamSeparated) {
  HwVarParams p;
  p.seed = 42;
  for (std::uint64_t core = 0; core < 3; ++core) {
    for (std::uint64_t i = 0; i < 16; ++i) {
      const std::uint64_t r = hwvarRoll(p, HwVarStream::kDvfsShift, core, i);
      EXPECT_EQ(r, hwvarRoll(p, HwVarStream::kDvfsShift, core, i));
      // Streams, cores, and seeds each decorrelate the draw.
      EXPECT_NE(r, hwvarRoll(p, HwVarStream::kPreempt, core, i));
      EXPECT_NE(r, hwvarRoll(p, HwVarStream::kDvfsShift, core + 7, i));
      HwVarParams q = p;
      q.seed = 43;
      EXPECT_NE(r, hwvarRoll(q, HwVarStream::kDvfsShift, core, i));
    }
  }
}

TEST(HwVarHashTest, DvfsStepMatchesTheFold) {
  // The incremental step HwVarCore tracks must agree with the O(n) pure
  // fold at every interval — that equivalence is what makes the DVFS
  // trajectory a function of the spec alone.
  HwVarParams p;
  p.enabled = true;
  p.seed = 3;
  p.levels = 4;
  p.dvfs_shift_pm = 350;
  const std::uint64_t core = 5;
  unsigned state = 0;
  unsigned seen_states = 1;  // interval 0 pins nominal
  for (std::uint64_t i = 1; i <= 64; ++i) {
    state = hwvarDvfsStep(p, core, i, state);
    EXPECT_LT(state, p.levels);
    EXPECT_EQ(state, hwvarDvfsState(p, core, i));
    if (state != 0) ++seen_states;
  }
  // With shift=350pm over 64 intervals the governor actually wanders.
  EXPECT_GT(seen_states, 1u);

  // Interval 0 is always nominal, and a single-level governor never moves.
  EXPECT_EQ(hwvarDvfsStep(p, core, 0, 3), 0u);
  HwVarParams flat = p;
  flat.levels = 1;
  for (std::uint64_t i = 0; i <= 16; ++i) {
    EXPECT_EQ(hwvarDvfsState(flat, core, i), 0u);
  }
}

TEST(HwVarHashTest, FreqPctInterpolatesLinearly) {
  HwVarParams p;
  p.levels = 4;
  p.min_freq_pct = 70;
  EXPECT_EQ(hwvarFreqPct(p, 0), 100u);
  EXPECT_EQ(hwvarFreqPct(p, 1), 90u);
  EXPECT_EQ(hwvarFreqPct(p, 2), 80u);
  EXPECT_EQ(hwvarFreqPct(p, 3), 70u);

  p.levels = 2;
  p.min_freq_pct = 55;
  EXPECT_EQ(hwvarFreqPct(p, 0), 100u);
  EXPECT_EQ(hwvarFreqPct(p, 1), 55u);

  p.levels = 1;
  EXPECT_EQ(hwvarFreqPct(p, 0), 100u);
}

TEST(HwVarHashTest, PreemptionRateTracksThePerMilleKnob) {
  HwVarParams p;
  p.seed = 9;
  p.preempt_pm = 100;
  std::uint64_t hits = 0;
  constexpr std::uint64_t kIntervals = 10000;
  for (std::uint64_t i = 0; i < kIntervals; ++i) {
    if (hwvarPreempts(p, 0, i)) ++hits;
  }
  // ~10% of boundaries; wide deterministic band.
  EXPECT_GT(hits, kIntervals / 20);
  EXPECT_LT(hits, kIntervals / 5);

  p.preempt_pm = 0;
  EXPECT_FALSE(hwvarPreempts(p, 0, 1));
  p.preempt_pm = 100;
  p.preempt_cycles = 0;  // a zero-cost slice never fires either
  EXPECT_EQ(hwvarPreempts(p, 0, 1), false);
}

TEST(HwVarHashTest, ReplicaSeedsAreAPureWellSeparatedExpansion) {
  const std::uint64_t base = 17;
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t r = 0; r < 32; ++r) {
    const std::uint64_t s = hwvarReplicaSeed(base, r);
    EXPECT_EQ(s, hwvarReplicaSeed(base, r));  // pure
    for (const std::uint64_t prev : seeds) EXPECT_NE(s, prev);
    seeds.push_back(s);
  }
  EXPECT_NE(hwvarReplicaSeed(base, 1), hwvarReplicaSeed(base + 1, 1));
}

TEST(HwVarHashTest, PlacementOffsetsThePhysicalCore) {
  HwVarParams p;
  EXPECT_EQ(hwvarPhysicalCore(p, 0), 0u);
  EXPECT_EQ(hwvarPhysicalCore(p, 3), 3u);
  p.placement = 10;
  EXPECT_EQ(hwvarPhysicalCore(p, 0), 10u);
  EXPECT_EQ(hwvarPhysicalCore(p, 3), 13u);
}

// ---------------------------------------------------------------------------
// HwVarCore unit tests against a deterministic fake inner core.

/// Fixed cost-per-op core: consume() charges `cost` cycles. Makes every
/// stretch/tick/preemption injection arithmetically checkable.
class FakeCore final : public CoreModel {
 public:
  explicit FakeCore(Cycle cost) : cost_(cost) {}

  void consume(const MicroOp&) override {
    now_ += cost_;
    ++retired_;
  }
  void warmOp(const MicroOp&) override {}
  Cycle now() const override { return now_; }
  Cycle frontier() const override { return now_; }
  Cycle drain() override { return now_; }
  void skipTo(Cycle c) override {
    if (c > now_) now_ = c;
  }
  std::uint64_t retired() const override { return retired_; }

 private:
  Cycle cost_;
  Cycle now_ = 0;
  std::uint64_t retired_ = 0;
};

MicroOp aluOp() {
  MicroOp op;
  op.cls = OpClass::kIntAlu;
  op.pc = 0x1000;
  return op;
}

/// Enabled params with every mechanism off: DVFS pinned to one level, no
/// tick, no preemption, no thermal model. Tests switch on exactly the
/// mechanism they check.
HwVarParams quietParams() {
  HwVarParams p;
  p.enabled = true;
  p.interval_ops = 100;
  p.levels = 1;
  p.tick_ops = 0;
  p.preempt_pm = 0;
  p.therm_threshold = 0;
  return p;
}

TEST(HwVarCoreTest, QuietSpecIsAPurePassthrough) {
  constexpr Cycle kCost = 2;
  StatRegistry stats;
  HwVarCore core(std::make_unique<FakeCore>(kCost), quietParams(), 0, &stats,
                 "core0");
  for (int i = 0; i < 1000; ++i) core.consume(aluOp());
  core.drain();
  EXPECT_EQ(core.now(), 2000u);
  EXPECT_EQ(core.retired(), 1000u);
  EXPECT_EQ(stats.counterValue("core0.hwvar.intervals"), 10u);
  EXPECT_EQ(stats.counterValue("core0.hwvar.stall_cycles"), 0u);
  EXPECT_EQ(stats.counterValue("core0.hwvar.dvfs_transitions"), 0u);
}

TEST(HwVarCoreTest, PeriodicTickChargesEveryDueTick) {
  HwVarParams p = quietParams();
  p.tick_ops = 10;
  p.tick_cycles = 7;
  StatRegistry stats;
  HwVarCore core(std::make_unique<FakeCore>(1), p, 0, &stats, "core0");

  // Two full intervals: 200 ops = 20 ticks, paid at the boundaries.
  for (int i = 0; i < 200; ++i) core.consume(aluOp());
  EXPECT_EQ(core.now(), 200u + 20u * 7u);
  EXPECT_EQ(stats.counterValue("core0.hwvar.ticks"), 20u);

  // A partial interval closed by drain() pays exactly the ticks that fell
  // due — tick accounting is total-op driven, not interval driven.
  for (int i = 0; i < 50; ++i) core.consume(aluOp());
  core.drain();
  EXPECT_EQ(core.now(), 250u + 25u * 7u);
  EXPECT_EQ(stats.counterValue("core0.hwvar.ticks"), 25u);
  EXPECT_EQ(stats.counterValue("core0.hwvar.intervals"), 3u);

  // drain() with nothing executed since the boundary is a no-op.
  const Cycle before = core.now();
  core.drain();
  EXPECT_EQ(core.now(), before);
  EXPECT_EQ(stats.counterValue("core0.hwvar.intervals"), 3u);
}

TEST(HwVarCoreTest, ThermalLatchTripsAndReleasesWithHysteresis) {
  // +100 heat per interval unthrottled, 80 cooled: net +20 per interval.
  // Throttled heating runs at min_freq (50%): +50 - 80 = net -30.
  HwVarParams p = quietParams();
  p.therm_heat_pm = 1000;
  p.therm_cool_pm = 800;
  p.therm_threshold = 140;
  p.min_freq_pct = 50;
  StatRegistry stats;
  HwVarCore core(std::make_unique<FakeCore>(1), p, 0, &stats, "core0");

  const auto runInterval = [&] {
    for (std::uint64_t i = 0; i < p.interval_ops; ++i) core.consume(aluOp());
  };

  // Heat ramp: 20 per interval, trip at >= 140 after the 7th close.
  for (int k = 0; k < 6; ++k) runInterval();
  EXPECT_FALSE(core.throttled());
  EXPECT_EQ(core.heat(), 120u);
  runInterval();
  EXPECT_TRUE(core.throttled());
  EXPECT_EQ(core.heat(), 140u);
  EXPECT_EQ(core.now(), 700u);  // the trip itself costs nothing yet

  // Throttled intervals run at 50%: work stretches by 100%, and the core
  // cools by 30 per interval. Release only at heat*2 <= threshold (70).
  runInterval();  // closes at heat 110 — still latched
  EXPECT_TRUE(core.throttled());
  EXPECT_EQ(core.heat(), 110u);
  EXPECT_EQ(core.now(), 700u + 200u);
  runInterval();  // heat 80 > 70: hysteresis holds the latch
  EXPECT_TRUE(core.throttled());
  EXPECT_EQ(core.heat(), 80u);
  runInterval();  // heat 50 <= 70: released
  EXPECT_FALSE(core.throttled());
  EXPECT_EQ(core.heat(), 50u);

  // Three throttled closes, each stretching 100 work cycles to 200.
  EXPECT_EQ(stats.counterValue("core0.hwvar.throttled_intervals"), 3u);
  EXPECT_EQ(stats.counterValue("core0.hwvar.stretch_cycles"), 300u);
  EXPECT_EQ(core.now(), 1000u + 300u);

  // The next interval runs at nominal again.
  runInterval();
  EXPECT_EQ(core.now(), 1100u + 300u);
}

TEST(HwVarCoreTest, ExternalSkipsAreNeverStretched) {
  // Permanently throttled core (no cooling): every interval after the
  // first stretches its *work* by 100% — but not cycles skipped in from
  // outside (an MPI wait is blocked time, not core activity).
  HwVarParams p = quietParams();
  p.therm_heat_pm = 1000;
  p.therm_cool_pm = 0;
  p.therm_threshold = 50;
  p.min_freq_pct = 50;
  StatRegistry stats;
  HwVarCore core(std::make_unique<FakeCore>(1), p, 0, &stats, "core0");

  for (int i = 0; i < 100; ++i) core.consume(aluOp());  // trip the latch
  ASSERT_TRUE(core.throttled());
  ASSERT_EQ(core.now(), 100u);

  for (int i = 0; i < 50; ++i) core.consume(aluOp());
  core.skipTo(core.now() + 500);  // the wait
  for (int i = 0; i < 50; ++i) core.consume(aluOp());

  // Interval work = 100 op-cycles; the 500 skipped cycles pass through
  // unstretched: 100 (prior) + 100 + 500 + 100 stretch.
  EXPECT_EQ(core.now(), 800u);
  EXPECT_EQ(stats.counterValue("core0.hwvar.stretch_cycles"), 100u);

  // Sanity: the same interval without the wait costs 200.
  EXPECT_EQ(stats.counterValue("core0.hwvar.intervals"), 2u);
}

TEST(HwVarCoreTest, PreemptionSliceLandsOnHashedBoundaries) {
  HwVarParams p = quietParams();
  p.preempt_pm = 1000;  // every boundary preempts: exact arithmetic
  p.preempt_cycles = 40;
  StatRegistry stats;
  HwVarCore core(std::make_unique<FakeCore>(1), p, 0, &stats, "core0");
  for (int i = 0; i < 500; ++i) core.consume(aluOp());
  EXPECT_EQ(stats.counterValue("core0.hwvar.preemptions"), 5u);
  EXPECT_EQ(core.now(), 500u + 5u * 40u);
}

TEST(HwVarCoreTest, DvfsTransitionsPayTheLatencyOnce) {
  HwVarParams p = quietParams();
  p.levels = 4;
  p.min_freq_pct = 70;
  p.dvfs_shift_pm = 1000;  // re-draw every boundary
  p.dvfs_latency_cycles = 55;
  p.seed = 7;
  StatRegistry stats;
  HwVarCore core(std::make_unique<FakeCore>(1), p, 0, &stats, "core0");
  for (int i = 0; i < 4000; ++i) core.consume(aluOp());
  core.drain();

  // The realized state trajectory is the pure fold; count its changes.
  std::uint64_t transitions = 0;
  unsigned state = 0;
  for (std::uint64_t k = 1; k <= stats.counterValue("core0.hwvar.intervals");
       ++k) {
    const unsigned next = hwvarDvfsStep(p, 0, k, state);
    if (next != state) ++transitions;
    state = next;
  }
  EXPECT_EQ(stats.counterValue("core0.hwvar.dvfs_transitions"), transitions);
  EXPECT_GT(transitions, 0u);
  // Injected stall is visible on the clock.
  EXPECT_GT(core.now(), 4000u);
}

// ---------------------------------------------------------------------------
// Fingerprints, engine rewrite, cache separation.

/// Lively spec for whole-machine runs: short intervals and high event
/// rates so reduced-scale test workloads cross many decision boundaries.
HwVarParams sweepVarParams() {
  HwVarParams p;
  p.enabled = true;
  p.seed = 5;
  p.interval_ops = 1500;
  p.levels = 4;
  p.min_freq_pct = 60;
  p.dvfs_shift_pm = 400;
  p.dvfs_latency_cycles = 300;
  p.therm_heat_pm = 400;
  p.therm_cool_pm = 300;
  p.therm_threshold = 5000;
  p.tick_ops = 700;
  p.tick_cycles = 150;
  p.preempt_pm = 200;
  p.preempt_cycles = 5000;
  return p;
}

TEST(HwVarFingerprintTest, VariabilityNeverSharesAFingerprintWithFullRuns) {
  const JobSpec full = microbenchJob(PlatformId::kRocket1, "MM", 0.25);
  JobSpec varied = full;
  applyHwVarOverrides(&varied.overrides, sweepVarParams());

  EXPECT_FALSE(hasHwVarOverrides(full.overrides));
  EXPECT_TRUE(hasHwVarOverrides(varied.overrides));
  EXPECT_NE(jobFingerprint(full), jobFingerprint(varied));

  // Different seeds and placements are different cache entries too — the
  // replica and placement axes of a study must never collapse.
  JobSpec other_seed = full;
  HwVarParams q = sweepVarParams();
  q.seed = 6;
  applyHwVarOverrides(&other_seed.overrides, q);
  EXPECT_NE(jobFingerprint(varied), jobFingerprint(other_seed));

  JobSpec other_core = full;
  q = sweepVarParams();
  q.placement = 1;
  applyHwVarOverrides(&other_core.overrides, q);
  EXPECT_NE(jobFingerprint(varied), jobFingerprint(other_core));
  EXPECT_NE(jobFingerprint(other_seed), jobFingerprint(other_core));
}

TEST(HwVarFingerprintTest, DeterministicFingerprintsAreLegacyIdentical) {
  // hwvar is folded into describeSocConfig() only when enabled, so the
  // deterministic machine's canonical description — and with it every
  // existing cache entry and golden snapshot — is byte-identical to
  // pre-hwvar builds. An explicitly *disabled* spec is equally invisible.
  const JobSpec full = microbenchJob(PlatformId::kRocket1, "MM", 0.25);
  const std::string desc = describeSocConfig(resolveSocConfig(full));
  EXPECT_EQ(desc.find("hwvar"), std::string::npos);

  JobSpec disabled = full;
  applyHwVarOverrides(&disabled.overrides, HwVarParams{});
  EXPECT_TRUE(hasHwVarOverrides(disabled.overrides));
  EXPECT_EQ(jobFingerprint(disabled), jobFingerprint(full));
}

TEST(HwVarFingerprintTest, InvalidOverridesAreRejectedAtResolve) {
  JobSpec job = microbenchJob(PlatformId::kRocket1, "MM", 0.25);
  HwVarParams bad = sweepVarParams();
  bad.min_freq_pct = 0;
  applyHwVarOverrides(&job.overrides, bad);
  EXPECT_THROW(resolveSocConfig(job), std::invalid_argument);

  JobSpec typo = microbenchJob(PlatformId::kRocket1, "MM", 0.25);
  typo.overrides.set("hwvar.bogus", "1");
  EXPECT_THROW(resolveSocConfig(typo), std::invalid_argument);
}

TEST(HwVarEngineTest, EffectiveSpecRewritesOnceAndRespectsPinnedSpecs) {
  SweepOptions options;
  options.use_cache = false;
  options.hwvar = sweepVarParams();
  SweepEngine engine(options);

  const JobSpec base = microbenchJob(PlatformId::kRocket1, "MM", 0.25);
  const JobSpec rewritten = engine.effectiveSpec(base);
  EXPECT_TRUE(hasHwVarOverrides(rewritten.overrides));
  EXPECT_NE(jobFingerprint(base), jobFingerprint(rewritten));

  // A spec that already pins its variability passes through untouched —
  // the engine must not stack its own knobs on top.
  JobSpec pinned = base;
  HwVarParams mine = sweepVarParams();
  mine.interval_ops = 7777;
  applyHwVarOverrides(&pinned.overrides, mine);
  const JobSpec kept = engine.effectiveSpec(pinned);
  EXPECT_EQ(jobFingerprint(kept), jobFingerprint(pinned));

  // A disabled engine is the identity.
  SweepOptions off;
  off.use_cache = false;
  EXPECT_EQ(jobFingerprint(SweepEngine(off).effectiveSpec(base)),
            jobFingerprint(base));
}

TEST(HwVarEngineTest, VariabilityResultsNeverAliasFullOnesInTheCache) {
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("bridge-hwvar-cache-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  const JobSpec job = microbenchJob(PlatformId::kRocket1, "MM", 0.25);

  SweepOptions varied_opts;
  varied_opts.cache_dir = dir.string();
  varied_opts.hwvar = sweepVarParams();
  const SweepResult varied = SweepEngine(varied_opts).runOne(job);
  ASSERT_TRUE(varied.ok());
  EXPECT_FALSE(varied.from_cache);

  // Same base spec on the deterministic machine, same cache directory: a
  // fresh execution, never the variability entry.
  SweepOptions full_opts;
  full_opts.cache_dir = dir.string();
  const SweepResult full = SweepEngine(full_opts).runOne(job);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full.from_cache);
  EXPECT_NE(full.fingerprint, varied.fingerprint);

  // Each mode hits its own entry on re-run.
  EXPECT_TRUE(SweepEngine(varied_opts).runOne(job).from_cache);
  EXPECT_TRUE(SweepEngine(full_opts).runOne(job).from_cache);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Determinism.

std::vector<JobSpec> hwvarGrid() {
  std::vector<JobSpec> jobs;
  for (const char* kernel : {"MM", "STL2", "ED1", "MIM"}) {
    jobs.push_back(microbenchJob(PlatformId::kRocket1, kernel, 0.25));
  }
  jobs.push_back(npbJob(PlatformId::kBananaPiSim, NpbBenchmark::kCG,
                        /*ranks=*/2, /*scale=*/0.1));
  jobs.push_back(npbJob(PlatformId::kMilkVHw, NpbBenchmark::kEP,
                        /*ranks=*/2, /*scale=*/0.1));
  return jobs;
}

TEST(HwVarDeterminismTest, WorkerCountCannotMoveAVariabilityCycle) {
  const std::vector<JobSpec> jobs = hwvarGrid();

  SweepOptions serial;
  serial.workers = 1;
  serial.use_cache = false;
  serial.hwvar = sweepVarParams();
  SweepOptions parallel = serial;
  parallel.workers = 8;

  const auto a = SweepEngine(serial).run(jobs);
  const auto b = SweepEngine(parallel).run(jobs);
  const auto c = SweepEngine(parallel).run(jobs);  // repeated run

  ASSERT_EQ(a.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    EXPECT_TRUE(a[i].ok());
    EXPECT_EQ(a[i].fingerprint, b[i].fingerprint);
    EXPECT_EQ(a[i].result.cycles, b[i].result.cycles);
    EXPECT_EQ(a[i].result.retired, b[i].result.retired);
    EXPECT_EQ(a[i].result.seconds, b[i].result.seconds);
    EXPECT_EQ(a[i].result.ipc, b[i].result.ipc);
    EXPECT_EQ(a[i].stats, b[i].stats);
    EXPECT_EQ(b[i].result.cycles, c[i].result.cycles);
    EXPECT_EQ(b[i].stats, c[i].stats);
  }
}

TEST(HwVarDeterminismTest, VariabilityActuallyMovesTheClock) {
  // Not a no-op: the periodic tick alone guarantees injected stall, so a
  // variability run is strictly slower than the deterministic machine
  // while retiring the identical instruction stream.
  SweepOptions full_opts;
  full_opts.use_cache = false;
  SweepOptions varied_opts = full_opts;
  varied_opts.hwvar = sweepVarParams();

  const JobSpec job = microbenchJob(PlatformId::kRocket1, "MM", 0.25);
  const SweepResult full = SweepEngine(full_opts).runOne(job);
  const SweepResult varied = SweepEngine(varied_opts).runOne(job);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(varied.ok());
  EXPECT_EQ(varied.result.retired, full.result.retired);
  EXPECT_GT(varied.result.cycles, full.result.cycles);
  EXPECT_LT(varied.result.ipc, full.result.ipc);
}

TEST(HwVarDeterminismTest, DisabledSpecIsBitIdenticalToTheDeterministicRun) {
  // An engine whose hwvar knob is the parsed "off" spec must produce the
  // deterministic machine's results bit-for-bit, fingerprints included —
  // the acceptance gate for this whole layer.
  HwVarParams off;
  ASSERT_TRUE(parseHwVarSpec("off", &off, nullptr));

  SweepOptions plain;
  plain.use_cache = false;
  SweepOptions disabled = plain;
  disabled.hwvar = off;

  const std::vector<JobSpec> jobs = hwvarGrid();
  const auto a = SweepEngine(plain).run(jobs);
  const auto b = SweepEngine(disabled).run(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    ASSERT_TRUE(a[i].ok());
    ASSERT_TRUE(b[i].ok());
    EXPECT_EQ(a[i].fingerprint, b[i].fingerprint);
    EXPECT_EQ(a[i].result.cycles, b[i].result.cycles);
    EXPECT_EQ(a[i].result.retired, b[i].result.retired);
    EXPECT_EQ(a[i].result.seconds, b[i].result.seconds);
    EXPECT_EQ(a[i].stats, b[i].stats);
  }
}

// ---------------------------------------------------------------------------
// Variability-study harness.

VariabilityStudyOptions studyOptions() {
  VariabilityStudyOptions opts;
  opts.kernels = {"MM", "ED1"};
  opts.platforms = {PlatformId::kBananaPiHw};
  opts.scale = 0.05;
  opts.replicas = 3;
  opts.placements = 3;
  opts.hwvar = sweepVarParams();
  opts.hwvar.interval_ops = 600;  // many boundaries even at tiny scale
  opts.hwvar.tick_ops = 300;
  opts.hwvar.therm_threshold = 2000;
  return opts;
}

TEST(HwVarStudyTest, SpreadFigureIsBitIdenticalAtAnyWorkerCount) {
  SweepOptions serial;
  serial.workers = 1;
  serial.use_cache = false;
  SweepOptions parallel = serial;
  parallel.workers = 8;

  const Figure a = computeVariabilitySpread(studyOptions(), serial);
  const Figure b = computeVariabilitySpread(studyOptions(), parallel);

  // Shape: per platform, {run, core} x {mean, sd, median, iqr} series with
  // one point per kernel.
  ASSERT_EQ(a.series.size(), 8u);
  EXPECT_EQ(a.series[0].label, "BananaPiHw/run/mean");
  EXPECT_EQ(a.series[1].label, "BananaPiHw/run/sd");
  EXPECT_EQ(a.series[4].label, "BananaPiHw/core/mean");
  EXPECT_EQ(a.series[7].label, "BananaPiHw/core/iqr");
  for (const FigureSeries& s : a.series) {
    ASSERT_EQ(s.points.size(), 2u) << s.label;
    EXPECT_EQ(s.points[0].first, "MM");
    EXPECT_EQ(s.points[1].first, "ED1");
  }

  // Bitwise equality across worker counts — the property that makes the
  // spread table golden-snapshot material.
  ASSERT_EQ(b.series.size(), a.series.size());
  for (std::size_t s = 0; s < a.series.size(); ++s) {
    for (std::size_t i = 0; i < a.series[s].points.size(); ++i) {
      EXPECT_EQ(a.series[s].points[i].second, b.series[s].points[i].second)
          << a.series[s].label << "/" << a.series[s].points[i].first;
    }
  }

  // The study shows real spread on both axes: seeded replicas and distinct
  // placements actually diverge under the lively spec.
  double run_sd = 0.0;
  double core_sd = 0.0;
  for (std::size_t i = 0; i < 2; ++i) {
    run_sd += a.series[1].points[i].second;
    core_sd += a.series[5].points[i].second;
    EXPECT_GT(a.series[0].points[i].second, 0.0);  // run means
  }
  EXPECT_GT(run_sd, 0.0);
  EXPECT_GT(core_sd, 0.0);
}

// ---------------------------------------------------------------------------
// Distribution-matching objective.

TEST(DistributionObjectiveTest, SelfDistanceIsExactlyZero) {
  // Model == reference: both sides simulate the identical replica set, so
  // the empirical distributions coincide and both metrics score exactly 0.
  DistributionOptions opts;
  opts.model = PlatformId::kRocket1;
  opts.reference = PlatformId::kRocket1;
  opts.kernels = {"MM"};
  opts.scale = 0.1;
  opts.replicas = 3;
  opts.hwvar = sweepVarParams();
  SweepOptions sweep;
  sweep.use_cache = false;

  for (const DistributionDistance d :
       {DistributionDistance::kKs, DistributionDistance::kQuantile}) {
    SCOPED_TRACE(distributionDistanceName(d));
    opts.distance = d;
    DistributionObjective objective(opts, sweep);
    const DistributionEval eval = objective.evaluate(Config{});
    EXPECT_DOUBLE_EQ(eval.error, 0.0);
    ASSERT_EQ(eval.kernels.size(), 1u);
    EXPECT_FALSE(eval.kernels[0].skipped);
    EXPECT_DOUBLE_EQ(eval.kernels[0].distance, 0.0);
    ASSERT_EQ(eval.kernels[0].sim_seconds.size(), 3u);
    EXPECT_EQ(eval.kernels[0].sim_seconds, eval.kernels[0].ref_seconds);
    EXPECT_TRUE(eval.skipped.empty());
    EXPECT_TRUE(objective.skippedComponents().empty());
  }
}

TEST(DistributionObjectiveTest, ReplicasActuallySpreadAndScoreInRange) {
  DistributionOptions opts;
  opts.model = PlatformId::kRocket1;
  opts.reference = PlatformId::kBananaPiHw;
  opts.kernels = {"MM"};
  opts.scale = 0.1;
  opts.replicas = 3;
  opts.hwvar = sweepVarParams();
  opts.hwvar.interval_ops = 600;
  opts.hwvar.tick_ops = 300;
  SweepOptions sweep;
  sweep.use_cache = false;
  DistributionObjective objective(opts, sweep);

  const DistributionEval eval = objective.evaluate(Config{});
  ASSERT_EQ(eval.kernels.size(), 1u);
  const KernelDistributionFit& fit = eval.kernels[0];
  EXPECT_FALSE(fit.skipped);
  ASSERT_EQ(fit.sim_seconds.size(), 3u);
  ASSERT_EQ(fit.ref_seconds.size(), 3u);
  EXPECT_TRUE(
      std::is_sorted(fit.sim_seconds.begin(), fit.sim_seconds.end()));
  // Distinct replica seeds produce a genuine distribution, not a point.
  EXPECT_NE(fit.sim_seconds.front(), fit.sim_seconds.back());
  EXPECT_GE(fit.distance, 0.0);
  EXPECT_LE(fit.distance, 1.0);  // KS statistic range
  EXPECT_DOUBLE_EQ(eval.error, fit.distance);

  // score() is the Objective-interface view of the same number, and the
  // whole evaluation is deterministic.
  EXPECT_DOUBLE_EQ(objective.score(Config{}), eval.error);
}

TEST(DistributionObjectiveTest, CoordinateDescentCompletesAnEndToEndTune) {
  DistributionOptions opts;
  opts.model = PlatformId::kRocket1;
  opts.reference = PlatformId::kBananaPiHw;
  opts.kernels = {"MM"};
  opts.scale = 0.05;
  opts.replicas = 2;
  opts.hwvar = sweepVarParams();
  opts.hwvar.interval_ops = 600;
  opts.hwvar.tick_ops = 300;
  SweepOptions sweep;
  sweep.use_cache = false;
  DistributionObjective objective(opts, sweep);

  ParamSpace space;
  space.addPow2("l2.banks", 1, 2);
  space.addPow2("l1d.mshrs", 4, 8);

  TuneOptions tune;
  tune.budget = 5;
  CoordinateDescentTuner tuner(space, &objective, tune);
  const TuneResult result = tuner.run({0, 0});

  EXPECT_GE(result.evaluations, 1u);
  EXPECT_LE(result.evaluations, tune.budget);
  EXPECT_EQ(result.trajectory.size(), result.evaluations);
  EXPECT_FALSE(result.stop_reason.empty());
  EXPECT_GE(result.best_error, 0.0);
  EXPECT_LE(result.best_error, opts.failure_penalty);
  // The winning candidate carries concrete overrides for the tuned knobs.
  EXPECT_GT(result.best_overrides.getInt("l2.banks", 0), 0);
}

// ---------------------------------------------------------------------------
// Serve / remote-worker round trip.

/// Scratch tree + worker process helpers, same conventions as the serve,
/// elastic, and sampling suites.
class HwVarServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("bridge-hwvar-") + info->name() + "-" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string socketPath() const { return (dir_ / "d.sock").string(); }
  std::string cachePath() const { return (dir_ / "cache").string(); }

  serve::DaemonOptions daemonOptions() const {
    serve::DaemonOptions options;
    options.socket_path = socketPath();
    options.sweep.workers = 2;
    options.sweep.cache_dir = cachePath();
    return options;
  }

  /// Spawn a real sweep_worker attached to `socket` (argv assembled before
  /// fork(): the gtest process is multi-threaded, so the child only makes
  /// async-signal-safe calls).
  static pid_t spawnWorker(const std::string& socket) {
    static std::vector<std::string> args;  // outlives the fork window
    args = {BRIDGE_SWEEP_WORKER_BIN, "--connect", socket, "--jobs", "2"};
    std::vector<char*> argv;
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::close(devnull);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }

  static void reapWorker(pid_t pid) {
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }

  static bool eventually(const std::function<bool()>& cond) {
    for (int spins = 0; spins < 5000; ++spins) {
      if (cond()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return cond();
  }

  fs::path dir_;
};

TEST_F(HwVarServeTest, VariabilityJobRoundTripsBitIdenticallyViaRemoteWorker) {
  // The variability rides in the spec's `hwvar.*` overrides, so a daemon
  // and worker with their own hwvar knobs off must execute it varied — and
  // return exactly what a local varied run computes.
  JobSpec varied_spec = microbenchJob(PlatformId::kRocket1, "MM", 0.25);
  applyHwVarOverrides(&varied_spec.overrides, sweepVarParams());
  const JobSpec full_spec = microbenchJob(PlatformId::kRocket1, "MM", 0.25);

  SweepOptions local;
  local.use_cache = false;
  const SweepResult local_varied = SweepEngine(local).runOne(varied_spec);
  const SweepResult local_full = SweepEngine(local).runOne(full_spec);
  ASSERT_TRUE(local_varied.ok());
  ASSERT_TRUE(local_full.ok());
  ASSERT_NE(local_varied.fingerprint, local_full.fingerprint);

  serve::SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  // Hardening: the worker's environment says to vary everything. The
  // worker must ignore it — variability comes only from each job's spec.
  ::setenv("BRIDGE_HWVAR", "interval=500,preempt=500,tick=100", 1);
  const pid_t worker = spawnWorker(daemon.socketPath());
  ::unsetenv("BRIDGE_HWVAR");
  ASSERT_GT(worker, 0);
  ASSERT_TRUE(eventually([&] { return daemon.stats().workers == 1; }))
      << "worker never registered";

  serve::ServeClient client(daemon.socketPath());
  const std::vector<SweepResult> remote =
      client.run({varied_spec, full_spec});
  ASSERT_EQ(remote.size(), 2u);

  // Both executed remotely (one worker attached: nothing runs locally),
  // under distinct fingerprints — the varied job never dedups against, or
  // serves from, the deterministic one.
  const serve::ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.completed_remote, 2u);
  EXPECT_EQ(stats.attached, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);

  EXPECT_EQ(remote[0].fingerprint, local_varied.fingerprint);
  EXPECT_EQ(remote[0].result.cycles, local_varied.result.cycles);
  EXPECT_EQ(remote[0].result.retired, local_varied.result.retired);
  EXPECT_EQ(remote[0].result.seconds, local_varied.result.seconds);
  EXPECT_EQ(remote[0].result.ipc, local_varied.result.ipc);
  EXPECT_EQ(remote[0].stats, local_varied.stats);

  EXPECT_EQ(remote[1].fingerprint, local_full.fingerprint);
  EXPECT_EQ(remote[1].result.cycles, local_full.result.cycles);
  EXPECT_EQ(remote[1].result.seconds, local_full.result.seconds);
  EXPECT_EQ(remote[1].stats, local_full.stats);

  daemon.requestStop();
  reapWorker(worker);
  daemon.join();
}

}  // namespace
}  // namespace bridge
