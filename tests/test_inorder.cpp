#include "core/inorder.h"

#include <gtest/gtest.h>

#include "dram/timings.h"

namespace bridge {
namespace {

MemSysParams fastMem() {
  MemSysParams p;
  p.l1i = {64, 8, 1, 1};
  p.l1d = {64, 8, 2, 4};
  p.l2 = {1024, 8, 14, 1, 2, 8};
  p.bus = {64, 1};
  p.dram = fixedLatency(100.0);
  p.dram_channels = 1;
  p.freq_ghz = 1.0;
  return p;
}

MicroOp aluOp(Reg dst, Reg src, Addr pc = 0x400) {
  MicroOp op;
  op.cls = OpClass::kIntAlu;
  op.dst = dst;
  op.src0 = src;
  op.pc = pc;
  return op;
}

struct Rig {
  StatRegistry stats;
  MemoryHierarchy mem;
  InOrderCore core;

  explicit Rig(const InOrderParams& p)
      : mem(1, fastMem(), &stats), core(0, p, &mem, &stats, "core0") {}
};

TEST(InOrder, IndependentAluIpcApproachesIssueWidth) {
  for (const unsigned width : {1u, 2u}) {
    InOrderParams p;
    p.issue_width = width;
    Rig rig(p);
    // Independent ops across 8 registers.
    for (int i = 0; i < 8000; ++i) {
      rig.core.consume(aluOp(intReg(5 + (i % 8)), intReg(13 + (i % 4))));
    }
    rig.core.drain();
    EXPECT_NEAR(rig.core.ipc(), static_cast<double>(width), 0.1)
        << "width " << width;
  }
}

TEST(InOrder, DependencyChainPinsIpcToOne) {
  InOrderParams p;
  p.issue_width = 2;
  Rig rig(p);
  for (int i = 0; i < 4000; ++i) {
    rig.core.consume(aluOp(intReg(5), intReg(5)));
  }
  rig.core.drain();
  EXPECT_NEAR(rig.core.ipc(), 1.0, 0.05);
}

TEST(InOrder, MulChainExposesLatency) {
  InOrderParams p;
  p.lat.set(OpClass::kIntMul, 4);
  Rig rig(p);
  MicroOp m;
  m.cls = OpClass::kIntMul;
  m.dst = intReg(5);
  m.src0 = intReg(5);
  m.pc = 0x400;
  for (int i = 0; i < 1000; ++i) rig.core.consume(m);
  const Cycle cycles = rig.core.drain();
  EXPECT_NEAR(static_cast<double>(cycles) / 1000.0, 4.0, 0.3);
}

TEST(InOrder, LoadUseStallOnMiss) {
  InOrderParams p;
  Rig rig(p);
  MicroOp ld;
  ld.cls = OpClass::kLoad;
  ld.dst = intReg(5);
  ld.pc = 0x400;
  ld.addr = 0x100000;
  ld.mem_size = 8;
  rig.core.consume(ld);
  rig.core.consume(aluOp(intReg(6), intReg(5)));  // uses the load
  const Cycle cycles = rig.core.drain();
  EXPECT_GT(cycles, 100u);  // waited for DRAM
}

TEST(InOrder, MispredictPenaltyScalesWithPipelineDepth) {
  auto run = [&](unsigned depth) {
    InOrderParams p;
    p.pipeline_depth = depth;
    Rig rig(p);
    // Unpredictable branches: alternate taken/not at one PC... use random
    // pattern that bimodal can't learn: strict alternation has ~50% rate.
    MicroOp br;
    br.cls = OpClass::kBranch;
    br.pc = 0x400;
    br.addr = 0x500;
    for (int i = 0; i < 4000; ++i) {
      br.taken = (i % 2) == 0;
      rig.core.consume(br);
    }
    return rig.core.drain();
  };
  const Cycle shallow = run(5);
  const Cycle deep = run(8);
  EXPECT_GT(deep, shallow + 1000);
}

TEST(InOrder, PredictableBranchesAreCheap) {
  InOrderParams p;
  Rig rig(p);
  MicroOp br;
  br.cls = OpClass::kBranch;
  br.pc = 0x400;
  br.addr = 0x500;
  br.taken = false;  // always fall through: learned immediately
  for (int i = 0; i < 4000; ++i) rig.core.consume(br);
  const Cycle cycles = rig.core.drain();
  EXPECT_NEAR(static_cast<double>(cycles) / 4000.0, 1.0, 0.1);
}

TEST(InOrder, StoreBufferAbsorbsStores) {
  InOrderParams p;
  p.store_buffer = 8;
  Rig rig(p);
  MicroOp st;
  st.cls = OpClass::kStore;
  st.pc = 0x400;
  st.mem_size = 8;
  // Stores to one warm line retire without stalling the core.
  rig.core.consume([&] {
    MicroOp warm;
    warm.cls = OpClass::kLoad;
    warm.dst = intReg(5);
    warm.pc = 0x3FC;
    warm.addr = 0x1000;
    warm.mem_size = 8;
    return warm;
  }());
  rig.core.skipTo(1000);
  for (int i = 0; i < 1000; ++i) {
    st.addr = 0x1000 + (i % 8) * 8;
    rig.core.consume(st);
  }
  const Cycle cycles = rig.core.drain();
  EXPECT_LT(cycles, 1000 + 1000 * 3);
}

TEST(InOrder, OneMemoryOpPerCycleEvenAtWidthTwo) {
  InOrderParams p;
  p.issue_width = 2;
  Rig rig(p);
  // Warm one line, then hammer it with independent loads: the single
  // memory port pins IPC at ~1 despite dual issue.
  MicroOp ld;
  ld.cls = OpClass::kLoad;
  ld.pc = 0x400;
  ld.addr = 0x1000;
  ld.mem_size = 8;
  ld.dst = intReg(5);
  rig.core.consume(ld);
  rig.core.skipTo(1000);
  for (int i = 0; i < 3000; ++i) {
    ld.dst = intReg(5 + (i % 8));
    rig.core.consume(ld);
  }
  const Cycle cycles = rig.core.drain() - 1000;
  EXPECT_GT(cycles, 2800u);  // ~one load per cycle
}

TEST(InOrder, DualIssueRawSplitsTheGroup) {
  // A dependent pair cannot issue in the same cycle, but cross-pair
  // independence still lets the machine sustain ~2 IPC — the same
  // software-pipelined behaviour real dual-issue in-order cores exhibit.
  InOrderParams p;
  p.issue_width = 2;
  Rig rig(p);
  for (int i = 0; i < 2000; ++i) {
    rig.core.consume(aluOp(intReg(5), intReg(6)));
    rig.core.consume(aluOp(intReg(7), intReg(5)));  // depends on previous
  }
  rig.core.drain();
  EXPECT_GT(rig.core.ipc(), 1.5);
  EXPECT_LE(rig.core.ipc(), 2.01);
}

TEST(InOrder, DivSerializesStructurally) {
  InOrderParams p;
  p.lat.set(OpClass::kIntDiv, 32);
  Rig rig(p);
  MicroOp d;
  d.cls = OpClass::kIntDiv;
  d.pc = 0x400;
  // Independent destinations, but the single divider serializes them.
  for (int i = 0; i < 100; ++i) {
    d.dst = intReg(5 + (i % 8));
    d.src0 = intReg(20);
    rig.core.consume(d);
  }
  const Cycle cycles = rig.core.drain();
  EXPECT_GE(cycles, 100u * 32u);
}

TEST(InOrder, FenceDrainsInFlightWork) {
  InOrderParams p;
  Rig rig(p);
  MicroOp ld;
  ld.cls = OpClass::kLoad;
  ld.dst = intReg(5);
  ld.pc = 0x400;
  ld.addr = 0x200000;  // cold miss
  rig.core.consume(ld);
  MicroOp fence;
  fence.cls = OpClass::kFence;
  fence.pc = 0x404;
  rig.core.consume(fence);
  // The op after the fence can't issue before the load completed.
  rig.core.consume(aluOp(intReg(6), intReg(7)));
  EXPECT_GT(rig.core.now(), 100u);
}

TEST(InOrder, SkipToAdvancesClock) {
  InOrderParams p;
  Rig rig(p);
  rig.core.skipTo(5000);
  EXPECT_EQ(rig.core.now(), 5000u);
  rig.core.skipTo(100);  // never goes backward
  EXPECT_EQ(rig.core.now(), 5000u);
}

TEST(InOrder, RetiredCountsEveryUop) {
  InOrderParams p;
  Rig rig(p);
  for (int i = 0; i < 123; ++i) rig.core.consume(aluOp(intReg(5), intReg(6)));
  EXPECT_EQ(rig.core.retired(), 123u);
}

}  // namespace
}  // namespace bridge
