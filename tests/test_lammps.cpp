#include "workloads/lammps.h"

#include <gtest/gtest.h>

#include <map>

namespace bridge {
namespace {

LammpsConfig tiny() {
  LammpsConfig cfg;
  cfg.atoms = 512;
  cfg.timesteps = 2;
  return cfg;
}

std::map<OpClass, std::uint64_t> histogram(TraceSource& t) {
  std::map<OpClass, std::uint64_t> h;
  MicroOp op;
  while (t.next(&op)) ++h[op.cls];
  return h;
}

TEST(Lammps, LjIsFpAndDivideHeavy) {
  auto t = makeLammpsRank(LammpsBenchmark::kLennardJones, 0, 1, tiny());
  const auto h = histogram(*t);
  EXPECT_GT(h.at(OpClass::kFpDiv), 0u);  // 1/r^2 per accepted pair
  EXPECT_GT(h.at(OpClass::kFpMul), h.at(OpClass::kIntAlu));
}

TEST(Lammps, ChainIsLighterThanLj) {
  auto count = [](LammpsBenchmark b) {
    auto t = makeLammpsRank(b, 0, 1, tiny());
    MicroOp op;
    std::uint64_t n = 0;
    while (t->next(&op)) ++n;
    return n;
  };
  EXPECT_LT(count(LammpsBenchmark::kChain),
            count(LammpsBenchmark::kLennardJones));
}

TEST(Lammps, ChainHasNoPairDivides) {
  auto t = makeLammpsRank(LammpsBenchmark::kChain, 0, 1, tiny());
  const auto h = histogram(*t);
  EXPECT_EQ(h.count(OpClass::kFpDiv), 0u);
}

TEST(Lammps, NeighborGathersAreDependentLoads) {
  auto t = makeLammpsRank(LammpsBenchmark::kLennardJones, 0, 1, tiny());
  MicroOp op;
  std::uint64_t dependent = 0;
  while (t->next(&op)) {
    if (op.cls == OpClass::kLoad && op.src0 != kNoReg) ++dependent;
  }
  EXPECT_GT(dependent, 1000u);
}

TEST(Lammps, MultiRankHaloSymmetry) {
  auto t = makeLammpsRank(LammpsBenchmark::kLennardJones, 1, 4, tiny());
  MicroOp op;
  std::uint64_t sends = 0, recvs = 0;
  while (t->next(&op)) {
    if (op.cls != OpClass::kMpi) continue;
    if (op.mpi.kind == MpiKind::kSend) ++sends;
    if (op.mpi.kind == MpiKind::kRecv) ++recvs;
  }
  EXPECT_EQ(sends, recvs);
  EXPECT_GT(sends, 0u);
}

TEST(Lammps, TimestepsScaleWork) {
  auto count = [](unsigned steps) {
    LammpsConfig cfg = tiny();
    cfg.timesteps = steps;
    auto t = makeLammpsRank(LammpsBenchmark::kLennardJones, 0, 1, cfg);
    MicroOp op;
    std::uint64_t n = 0;
    while (t->next(&op)) ++n;
    return n;
  };
  EXPECT_NEAR(static_cast<double>(count(4)) / count(2), 2.0, 0.3);
}

TEST(Lammps, AtomsSplitAcrossRanks) {
  auto count = [](int nranks) {
    auto t = makeLammpsRank(LammpsBenchmark::kLennardJones, 0, nranks,
                            tiny());
    MicroOp op;
    std::uint64_t n = 0;
    while (t->next(&op)) {
      if (op.cls != OpClass::kMpi) ++n;
    }
    return n;
  };
  EXPECT_GT(count(1), 3 * count(4) / 2);
}

}  // namespace
}  // namespace bridge
