#include "platforms/platforms.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

TEST(Platforms, Table4RocketConfigs) {
  const SocConfig r1 = makePlatform(PlatformId::kRocket1, 4);
  EXPECT_EQ(r1.core_kind, CoreKind::kInOrder);
  EXPECT_DOUBLE_EQ(r1.freq_ghz, 1.6);
  EXPECT_EQ(r1.inorder.issue_width, 1u);
  EXPECT_EQ(r1.inorder.pipeline_depth, 5u);
  EXPECT_EQ(r1.mem.l1d.sets, 64u);
  EXPECT_EQ(r1.mem.l1d.ways, 8u);   // 32 KiB
  EXPECT_EQ(r1.mem.l2.banks, 1u);
  EXPECT_EQ(r1.mem.bus.width_bits, 64u);
  EXPECT_FALSE(r1.mem.has_llc);

  const SocConfig r2 = makePlatform(PlatformId::kRocket2, 4);
  EXPECT_EQ(r2.mem.l2.banks, 4u);
  EXPECT_EQ(r2.mem.bus.width_bits, 64u);

  const SocConfig bp = makePlatform(PlatformId::kBananaPiSim, 4);
  EXPECT_EQ(bp.mem.l2.banks, 4u);
  EXPECT_EQ(bp.mem.bus.width_bits, 128u);
  EXPECT_DOUBLE_EQ(bp.freq_ghz, 1.6);

  const SocConfig fast = makePlatform(PlatformId::kFastBananaPiSim, 4);
  EXPECT_DOUBLE_EQ(fast.freq_ghz, 3.2);
  EXPECT_EQ(fast.mem.bus.width_bits, 128u);
}

TEST(Platforms, Table4BoomConfigs) {
  const SocConfig s = makePlatform(PlatformId::kSmallBoom, 4);
  EXPECT_EQ(s.core_kind, CoreKind::kOutOfOrder);
  EXPECT_DOUBLE_EQ(s.freq_ghz, 2.0);
  EXPECT_EQ(s.ooo.fetch_width, 4u);
  EXPECT_EQ(s.ooo.decode_width, 1u);
  EXPECT_EQ(s.ooo.rob, 32u);
  EXPECT_EQ(s.ooo.ldq, 8u);
  EXPECT_EQ(s.mem.l1d.ways, 4u);

  const SocConfig m = makePlatform(PlatformId::kMediumBoom, 4);
  EXPECT_EQ(m.ooo.decode_width, 2u);
  EXPECT_EQ(m.ooo.rob, 64u);
  EXPECT_EQ(m.ooo.ldq, 16u);

  const SocConfig l = makePlatform(PlatformId::kLargeBoom, 4);
  EXPECT_EQ(l.ooo.fetch_width, 8u);
  EXPECT_EQ(l.ooo.decode_width, 3u);
  EXPECT_EQ(l.ooo.rob, 96u);
  EXPECT_EQ(l.ooo.ldq, 24u);
  EXPECT_EQ(l.mem.l1d.ways, 8u);
  EXPECT_EQ(l.mem.l2.banks, 4u);
  EXPECT_EQ(l.mem.bus.width_bits, 128u);
}

TEST(Platforms, MilkVSimTuning) {
  // Paper §4: Large BOOM + 64 KiB L1s + 1 MiB L2 + 4 x 16 MiB simplified
  // LLC slices on 4 channels.
  const SocConfig c = makePlatform(PlatformId::kMilkVSim, 4);
  EXPECT_EQ(c.mem.l1d.sets * c.mem.l1d.ways * kLineBytes, 64u * 1024);
  EXPECT_EQ(c.mem.l2.sets * c.mem.l2.ways * kLineBytes, 1024u * 1024);
  ASSERT_TRUE(c.mem.has_llc);
  EXPECT_EQ(c.mem.llc.mode, LlcMode::kSimplifiedSram);
  EXPECT_EQ(std::uint64_t{c.mem.llc.sets} * c.mem.llc.ways * kLineBytes,
            16u * 1024 * 1024);
  EXPECT_EQ(c.mem.dram_channels, 4u);
  EXPECT_EQ(c.ooo.rob, 96u);  // still a Large BOOM core
  EXPECT_FALSE(c.mem.prefetch.enabled);  // FireSim model: no prefetcher
}

TEST(Platforms, FireSimModelsUseDdr3) {
  for (const PlatformId id :
       {PlatformId::kRocket1, PlatformId::kRocket2, PlatformId::kBananaPiSim,
        PlatformId::kFastBananaPiSim, PlatformId::kSmallBoom,
        PlatformId::kMediumBoom, PlatformId::kLargeBoom,
        PlatformId::kMilkVSim}) {
    const SocConfig c = makePlatform(id, 1);
    EXPECT_NE(c.mem.dram.name.find("ddr3"), std::string::npos)
        << platformName(id);
    EXPECT_FALSE(isHardwareModel(id));
  }
}

TEST(Platforms, HardwareModelsUseTheirSiliconMemory) {
  const SocConfig bp = makePlatform(PlatformId::kBananaPiHw, 4);
  EXPECT_TRUE(isHardwareModel(PlatformId::kBananaPiHw));
  EXPECT_NE(bp.mem.dram.name.find("lpddr4"), std::string::npos);
  EXPECT_EQ(bp.mem.dram_channels, 2u);
  EXPECT_EQ(bp.inorder.issue_width, 2u);
  EXPECT_EQ(bp.inorder.pipeline_depth, 8u);
  // No prefetcher on the K1 model (see platforms.cpp for the paper-based
  // reasoning); the SG2042 model does prefetch.
  EXPECT_FALSE(bp.mem.prefetch.enabled);
  EXPECT_GT(bp.mem.tlb.l2_entries, 0u);

  const SocConfig mv = makePlatform(PlatformId::kMilkVHw, 4);
  EXPECT_TRUE(isHardwareModel(PlatformId::kMilkVHw));
  EXPECT_NE(mv.mem.dram.name.find("ddr4"), std::string::npos);
  EXPECT_EQ(mv.mem.dram.name.find("lpddr4"), std::string::npos);
  EXPECT_EQ(mv.mem.dram_channels, 4u);
  ASSERT_TRUE(mv.mem.has_llc);
  EXPECT_EQ(mv.mem.llc.mode, LlcMode::kRealistic);
  EXPECT_GT(mv.ooo.rob, makePlatform(PlatformId::kLargeBoom, 1).ooo.rob);
}

TEST(Platforms, NamesRoundTrip) {
  for (const PlatformId id : allPlatforms()) {
    const SocConfig c = makePlatform(id, 1);
    EXPECT_EQ(c.name, platformName(id));
  }
}

TEST(Platforms, FamiliesPartitionSimulationModels) {
  const auto rocket = rocketFamily();
  const auto boom = boomFamily();
  EXPECT_EQ(rocket.size(), 4u);
  EXPECT_EQ(boom.size(), 4u);
  for (const PlatformId id : rocket) {
    EXPECT_EQ(makePlatform(id, 1).core_kind, CoreKind::kInOrder);
  }
  for (const PlatformId id : boom) {
    EXPECT_EQ(makePlatform(id, 1).core_kind, CoreKind::kOutOfOrder);
  }
}

}  // namespace
}  // namespace bridge
