// Parameterized sweep: every evaluated MicroBench kernel must run, be
// deterministic, and respect core IPC bounds on a representative in-order
// and out-of-order platform. One TEST_P instance per (kernel, platform).
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "workloads/microbench.h"

namespace bridge {
namespace {

struct SweepCase {
  std::string kernel;
  PlatformId platform;
  double max_ipc;  // issue-width bound for the platform
};

std::vector<SweepCase> allCases() {
  std::vector<SweepCase> cases;
  for (const std::string& name : microbenchNames()) {
    cases.push_back({name, PlatformId::kBananaPiSim, 1.0});   // 1-issue
    cases.push_back({name, PlatformId::kMilkVSim, 3.0});      // 3-decode
  }
  return cases;
}

class MicrobenchSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MicrobenchSweep, RunsDeterministicallyWithinIpcBounds) {
  const SweepCase& c = GetParam();
  const RunResult a = runMicrobench(c.platform, c.kernel, 0.05);
  const RunResult b = runMicrobench(c.platform, c.kernel, 0.05);
  EXPECT_EQ(a.cycles, b.cycles) << "nondeterministic";
  EXPECT_EQ(a.retired, b.retired);
  EXPECT_GT(a.cycles, 0u);
  EXPECT_GT(a.retired, 100u);
  EXPECT_GT(a.ipc, 0.0);
  EXPECT_LE(a.ipc, c.max_ipc + 1e-9);
}

std::string caseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string n = info.param.kernel + "_" +
                  std::string(platformName(info.param.platform));
  for (char& ch : n) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, MicrobenchSweep,
                         ::testing::ValuesIn(allCases()), caseName);

}  // namespace
}  // namespace bridge
