// MPI strong-scaling study: run every application workload at 1/2/4 ranks
// on both the FireSim-style models and the silicon references, printing
// runtimes and parallel efficiency — the experiment behind Figures 5-7.
//
//   $ ./mpi_scaling
#include <cstdio>

#include "harness/experiment.h"

namespace {

using namespace bridge;

template <typename RunFn>
void study(const char* name, RunFn&& run) {
  std::printf("\n%s\n", name);
  std::printf("%-18s %12s %12s %12s %12s\n", "platform", "1 rank (ms)",
              "2 ranks", "4 ranks", "eff@4");
  for (const PlatformId p :
       {PlatformId::kBananaPiSim, PlatformId::kBananaPiHw,
        PlatformId::kMilkVSim, PlatformId::kMilkVHw}) {
    double ms[3];
    int i = 0;
    for (const int ranks : {1, 2, 4}) {
      ms[i++] = run(p, ranks) * 1e3;
    }
    std::printf("%-18s %12.3f %12.3f %12.3f %11.0f%%\n",
                std::string(platformName(p)).c_str(), ms[0], ms[1], ms[2],
                100.0 * ms[0] / (4.0 * ms[2]));
  }
}

}  // namespace

int main() {
  using namespace bridge;

  UmeConfig ume;
  study("UME (32^3 zones, three kernels)",
        [&](PlatformId p, int ranks) { return runUme(p, ranks, ume).seconds; });

  LammpsConfig lj;
  study("LAMMPS Lennard-Jones", [&](PlatformId p, int ranks) {
    return runLammps(p, LammpsBenchmark::kLennardJones, ranks, lj).seconds;
  });

  LammpsConfig chain;
  study("LAMMPS Polymer Chain", [&](PlatformId p, int ranks) {
    return runLammps(p, LammpsBenchmark::kChain, ranks, chain).seconds;
  });

  NpbConfig npb;
  npb.scale = 0.5;
  study("NPB CG (scaled Class A)", [&](PlatformId p, int ranks) {
    return runNpb(p, NpbBenchmark::kCG, ranks, npb).seconds;
  });
  return 0;
}
