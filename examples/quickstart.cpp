// Quickstart: build a platform, run a workload, read the results.
//
//   $ ./quickstart
//
// Instantiates the paper's Banana Pi simulation model (a tuned Rocket
// tile), runs one MicroBench kernel and one NPB benchmark on it, and
// compares against the silicon reference model — the library's core loop
// in ~40 lines.
#include <cstdio>

#include "harness/experiment.h"

int main() {
  using namespace bridge;

  // 1. Single-core microbenchmark on the FireSim-style model.
  const RunResult sim = runMicrobench(PlatformId::kBananaPiSim, "ML2");
  std::printf("ML2 on BananaPiSim : %8.3f ms, IPC %.2f (%llu uops)\n",
              sim.seconds * 1e3, sim.ipc,
              static_cast<unsigned long long>(sim.retired));

  // 2. The same kernel on the silicon reference model.
  const RunResult hw = runMicrobench(PlatformId::kBananaPiHw, "ML2");
  std::printf("ML2 on BananaPiHw  : %8.3f ms, IPC %.2f\n", hw.seconds * 1e3,
              hw.ipc);

  // 3. The paper's metric: relative speedup (1.0 = perfect match).
  std::printf("relative speedup   : %.3f (target 1.0)\n",
              relativeSpeedup(hw.seconds, sim.seconds));

  // 4. Multi-rank applications via the simulated MPI runtime: EP scales
  // nearly ideally; CG gives much of its speedup back to communication
  // and shared-memory contention (as in the paper's Figure 3b).
  NpbConfig cfg;
  for (const NpbBenchmark bench : {NpbBenchmark::kEP, NpbBenchmark::kCG}) {
    const RunResult r1 =
        runNpb(PlatformId::kBananaPiSim, bench, /*ranks=*/1, cfg);
    const RunResult r4 =
        runNpb(PlatformId::kBananaPiSim, bench, /*ranks=*/4, cfg);
    std::printf("NPB %s 1 rank      : %8.3f ms\n",
                std::string(npbName(bench)).c_str(), r1.seconds * 1e3);
    std::printf("NPB %s 4 ranks     : %8.3f ms (%.2fx strong scaling, "
                "%llu MPI messages)\n",
                std::string(npbName(bench)).c_str(), r4.seconds * 1e3,
                r1.seconds / r4.seconds,
                static_cast<unsigned long long>(r4.messages));
  }
  return 0;
}
