// serve_client: minimal tour of the sweep daemon protocol.
//
// Start a daemon in one terminal and point this example at it:
//
//   ./bench/sweep_serve --socket /tmp/bridge.sock &
//   ./examples/serve_client /tmp/bridge.sock
//
// The example connects twice and submits the same three-job grid from both
// connections. The daemon executes each unique grid cell once — the second
// batch is served from the sharded result cache (or by attaching to the
// first batch's in-flight jobs, if it arrives while they still run) — and
// the printed cycle counts are bit-identical, because results cross the
// wire with exact double round-tripping.
#include <cstdio>
#include <exception>
#include <vector>

#include "serve/client.h"
#include "serve/daemon.h"
#include "sweep/job.h"

int main(int argc, char** argv) {
  const std::string socket =
      argc > 1 ? argv[1] : bridge::serve::SweepDaemon::defaultSocketPath();
  try {
    std::vector<bridge::JobSpec> grid;
    grid.push_back(bridge::microbenchJob(bridge::PlatformId::kRocket1, "MM"));
    grid.push_back(bridge::microbenchJob(bridge::PlatformId::kRocket1, "DPT"));
    grid.push_back(
        bridge::microbenchJob(bridge::PlatformId::kLargeBoom, "MM"));

    for (int pass = 1; pass <= 2; ++pass) {
      bridge::serve::ServeClient client(socket);
      std::printf("pass %d: connected to %s (policy %s)\n", pass,
                  socket.c_str(), client.hello().policy.c_str());
      bridge::RunReport report;
      const std::vector<bridge::SweepResult> results =
          client.run(grid, &report);
      for (const bridge::SweepResult& r : results) {
        std::printf("  %-28s %12llu cycles  ipc %.3f%s\n", r.label.c_str(),
                    static_cast<unsigned long long>(r.result.cycles),
                    r.result.ipc, r.from_cache ? "  (cached)" : "");
      }
      std::printf("pass %d: %s\n", pass, report.summary().c_str());
    }

    const bridge::serve::ServeStats stats =
        bridge::serve::ServeClient(socket).stats();
    std::printf("daemon: %s\n", stats.summary().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "error: %s\n(is a daemon running? start one with "
                 "./bench/sweep_serve --socket %s)\n",
                 e.what(), socket.c_str());
    return 1;
  }
  return 0;
}
