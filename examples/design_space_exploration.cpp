// Design-space exploration: sweep microarchitectural parameters of a BOOM
// tile and report how each knob moves a latency-bound and an ILP-bound
// workload — the kind of pre-tape-out study FireSim exists for (paper §1).
// Each sweep is a declarative job grid handed to the SweepEngine, so points
// run in parallel (--jobs N) and repeat runs hit the result cache.
//
//   $ ./design_space_exploration [--jobs N] [--no-cache]
#include <cstdio>
#include <vector>

#include "sweep/sweep.h"

namespace {

using namespace bridge;

/// One no-warmup kernel run with a single SocConfig override applied.
JobSpec point(PlatformId platform, const char* kernel, const char* key,
              unsigned value) {
  JobSpec job = microbenchJob(platform, kernel, /*scale=*/0.3);
  job.warmup = false;
  job.overrides.set(key, std::to_string(value));
  return job;
}

double ms(const SweepResult& r) { return r.result.seconds * 1e3; }

}  // namespace

int main(int argc, char** argv) {
  using namespace bridge;
  const SweepCli cli = SweepCli::parse(argc, argv);
  SweepEngine engine(cli.options);

  std::printf("Sweep 1: reorder-buffer size vs memory-level parallelism\n");
  std::printf("%-8s %14s %14s\n", "RoB", "MIM (ms)", "EM5 (ms)");
  const unsigned robs[] = {16u, 32u, 64u, 96u, 192u};
  {
    std::vector<JobSpec> jobs;
    for (const unsigned rob : robs) {
      jobs.push_back(point(PlatformId::kLargeBoom, "MIM", "ooo.rob", rob));
      jobs.push_back(point(PlatformId::kLargeBoom, "EM5", "ooo.rob", rob));
    }
    const auto results = engine.run(jobs);
    for (std::size_t i = 0; i < std::size(robs); ++i) {
      std::printf("%-8u %14.3f %14.3f\n", robs[i], ms(results[2 * i]),
                  ms(results[2 * i + 1]));
    }
  }

  std::printf("\nSweep 2: L2 banks x bus width on a bandwidth kernel\n");
  std::printf("%-8s %10s %18s\n", "banks", "bus", "ML2_BW_ld (ms)");
  {
    std::vector<JobSpec> jobs;
    for (const unsigned banks : {1u, 2u, 4u}) {
      for (const unsigned bus : {64u, 128u}) {
        JobSpec job = point(PlatformId::kRocket1, "ML2_BW_ld", "l2.banks",
                            banks);
        job.overrides.set("bus.width_bits", std::to_string(bus));
        jobs.push_back(job);
      }
    }
    const auto results = engine.run(jobs);
    std::size_t j = 0;
    for (const unsigned banks : {1u, 2u, 4u}) {
      for (const unsigned bus : {64u, 128u}) {
        std::printf("%-8u %8u-bit %18.3f\n", banks, bus, ms(results[j++]));
      }
    }
  }

  std::printf("\nSweep 3: issue width of an in-order core\n");
  std::printf("%-8s %14s %14s\n", "issue", "EI (ms)", "ED1 (ms)");
  {
    std::vector<JobSpec> jobs;
    for (const unsigned width : {1u, 2u}) {
      jobs.push_back(point(PlatformId::kRocket1, "EI",
                           "inorder.issue_width", width));
      jobs.push_back(point(PlatformId::kRocket1, "ED1",
                           "inorder.issue_width", width));
    }
    const auto results = engine.run(jobs);
    std::size_t j = 0;
    for (const unsigned width : {1u, 2u}) {
      const double ei = ms(results[j++]);
      const double ed1 = ms(results[j++]);
      std::printf("%-8u %14.3f %14.3f\n", width, ei, ed1);
    }
  }
  std::printf("\n(EI is ILP-rich: width helps; ED1 is a serial chain: it "
              "cannot.)\n");
  return 0;
}
