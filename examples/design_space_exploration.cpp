// Design-space exploration: sweep microarchitectural parameters of a BOOM
// tile and report how each knob moves a latency-bound and an ILP-bound
// workload — the kind of pre-tape-out study FireSim exists for (paper §1).
//
//   $ ./design_space_exploration
#include <cstdio>
#include <memory>

#include "platforms/platforms.h"
#include "soc/soc.h"
#include "trace/kernel.h"
#include "workloads/microbench.h"

namespace {

using namespace bridge;

double runKernel(const SocConfig& cfg, const char* kernel) {
  Soc soc(cfg);
  auto trace = makeMicrobench(kernel, /*scale=*/0.3);
  const Cycle cycles = soc.runTrace(*trace);
  return soc.seconds(cycles) * 1e3;
}

}  // namespace

int main() {
  using namespace bridge;

  std::printf("Sweep 1: reorder-buffer size vs memory-level parallelism\n");
  std::printf("%-8s %14s %14s\n", "RoB", "MIM (ms)", "EM5 (ms)");
  for (const unsigned rob : {16u, 32u, 64u, 96u, 192u}) {
    SocConfig cfg = makePlatform(PlatformId::kLargeBoom, 1);
    cfg.ooo.rob = rob;
    std::printf("%-8u %14.3f %14.3f\n", rob, runKernel(cfg, "MIM"),
                runKernel(cfg, "EM5"));
  }

  std::printf("\nSweep 2: L2 banks x bus width on a bandwidth kernel\n");
  std::printf("%-8s %10s %18s\n", "banks", "bus", "ML2_BW_ld (ms)");
  for (const unsigned banks : {1u, 2u, 4u}) {
    for (const unsigned bus : {64u, 128u}) {
      SocConfig cfg = makePlatform(PlatformId::kRocket1, 1);
      cfg.mem.l2.banks = banks;
      cfg.mem.bus.width_bits = bus;
      std::printf("%-8u %8u-bit %18.3f\n", banks, bus,
                  runKernel(cfg, "ML2_BW_ld"));
    }
  }

  std::printf("\nSweep 3: issue width of an in-order core\n");
  std::printf("%-8s %14s %14s\n", "issue", "EI (ms)", "ED1 (ms)");
  for (const unsigned width : {1u, 2u}) {
    SocConfig cfg = makePlatform(PlatformId::kRocket1, 1);
    cfg.inorder.issue_width = width;
    std::printf("%-8u %14.3f %14.3f\n", width, runKernel(cfg, "EI"),
                runKernel(cfg, "ED1"));
  }
  std::printf("\n(EI is ILP-rich: width helps; ED1 is a serial chain: it "
              "cannot.)\n");
  return 0;
}
