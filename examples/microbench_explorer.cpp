// MicroBench explorer: run any kernel on any platform (or all of either)
// from the command line — the tool you reach for when tuning a model by
// hand, as the paper's authors did in §4. Runs go through the SweepEngine,
// so full-suite summaries parallelize (--jobs N) and repeats are served
// from the result cache.
//
//   $ ./microbench_explorer                  # category summary, all platforms
//   $ ./microbench_explorer MM               # one kernel, all platforms
//   $ ./microbench_explorer MM BananaPiSim   # one kernel, one platform
//   $ ./microbench_explorer --list           # kernel inventory
//   $ ./microbench_explorer --jobs 8         # summary on 8 workers
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sweep/sweep.h"
#include "workloads/microbench.h"

namespace {

using namespace bridge;

PlatformId parsePlatform(const std::string& name, bool* ok) {
  *ok = true;
  for (const PlatformId id : allPlatforms()) {
    if (platformName(id) == name) return id;
  }
  *ok = false;
  return PlatformId::kRocket1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bridge;
  const SweepCli cli = SweepCli::parse(argc, argv);

  if (!cli.rest.empty() && cli.rest.front() == "--list") {
    for (const MicrobenchInfo& info : microbenchCatalog()) {
      std::printf("%-12s %-14s %s%s\n", info.name.c_str(),
                  std::string(categoryName(info.category)).c_str(),
                  info.description.c_str(),
                  info.excluded ? " [excluded]" : "");
    }
    return 0;
  }

  std::vector<PlatformId> platforms;
  if (cli.rest.size() > 1) {
    bool ok = false;
    platforms.push_back(parsePlatform(cli.rest[1], &ok));
    if (!ok) {
      std::fprintf(stderr, "unknown platform '%s'; known:",
                   cli.rest[1].c_str());
      for (const PlatformId id : allPlatforms()) {
        std::fprintf(stderr, " %s", std::string(platformName(id)).c_str());
      }
      std::fprintf(stderr, "\n");
      return 1;
    }
  } else {
    platforms = {PlatformId::kBananaPiSim, PlatformId::kBananaPiHw,
                 PlatformId::kMilkVSim, PlatformId::kMilkVHw};
  }

  std::printf("%-12s", "kernel");
  for (const PlatformId p : platforms) {
    std::printf(" %18s", std::string(platformName(p)).c_str());
  }
  std::printf("   (time / IPC)\n");

  SweepEngine engine(cli.options);

  if (!cli.rest.empty()) {
    // One kernel across the platform list.
    const std::string& kernel = cli.rest.front();
    std::vector<JobSpec> jobs;
    for (const PlatformId p : platforms) {
      jobs.push_back(microbenchJob(p, kernel, /*scale=*/0.2));
    }
    const auto results = engine.run(jobs);
    std::printf("%-12s", kernel.c_str());
    for (const SweepResult& r : results) {
      std::printf(" %10.3fms/%.2f", r.result.seconds * 1e3, r.result.ipc);
    }
    std::printf("\n");
    return 0;
  }

  // No kernel given: geometric-mean IPC per category across the suite,
  // the whole (kernel x platform) grid as one sweep.
  std::vector<const MicrobenchInfo*> suite;
  std::vector<JobSpec> jobs;
  for (const MicrobenchInfo& info : microbenchCatalog()) {
    if (info.excluded) continue;
    suite.push_back(&info);
    for (const PlatformId p : platforms) {
      jobs.push_back(microbenchJob(p, info.name, /*scale=*/0.1));
    }
  }
  const auto results = engine.run(jobs);

  std::map<MicrobenchCategory, std::vector<std::vector<double>>> cat;
  for (std::size_t k = 0; k < suite.size(); ++k) {
    std::vector<double> row;
    for (std::size_t i = 0; i < platforms.size(); ++i) {
      row.push_back(results[k * platforms.size() + i].result.ipc);
    }
    cat[suite[k]->category].push_back(std::move(row));
  }
  for (const auto& [c, rows] : cat) {
    std::printf("%-12s", std::string(categoryName(c)).c_str());
    for (std::size_t i = 0; i < platforms.size(); ++i) {
      double logsum = 0.0;
      for (const auto& row : rows) logsum += std::log(row[i]);
      std::printf(" %18.3f",
                  std::exp(logsum / static_cast<double>(rows.size())));
    }
    std::printf("   (geomean IPC, %zu kernels)\n", rows.size());
  }
  return 0;
}
