// MicroBench explorer: run any kernel on any platform (or all of either)
// from the command line — the tool you reach for when tuning a model by
// hand, as the paper's authors did in §4.
//
//   $ ./microbench_explorer                  # category summary, all platforms
//   $ ./microbench_explorer MM               # one kernel, all platforms
//   $ ./microbench_explorer MM BananaPiSim   # one kernel, one platform
//   $ ./microbench_explorer --list           # kernel inventory
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "workloads/microbench.h"

namespace {

using namespace bridge;

PlatformId parsePlatform(const std::string& name, bool* ok) {
  *ok = true;
  for (const PlatformId id : allPlatforms()) {
    if (platformName(id) == name) return id;
  }
  *ok = false;
  return PlatformId::kRocket1;
}

void runOne(const std::string& kernel,
            const std::vector<PlatformId>& platforms) {
  std::printf("%-12s", kernel.c_str());
  for (const PlatformId p : platforms) {
    const RunResult r = runMicrobench(p, kernel, /*scale=*/0.2);
    std::printf(" %10.3fms/%.2f", r.seconds * 1e3, r.ipc);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bridge;

  if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
    for (const MicrobenchInfo& info : microbenchCatalog()) {
      std::printf("%-12s %-14s %s%s\n", info.name.c_str(),
                  std::string(categoryName(info.category)).c_str(),
                  info.description.c_str(),
                  info.excluded ? " [excluded]" : "");
    }
    return 0;
  }

  std::vector<PlatformId> platforms;
  if (argc > 2) {
    bool ok = false;
    platforms.push_back(parsePlatform(argv[2], &ok));
    if (!ok) {
      std::fprintf(stderr, "unknown platform '%s'; known:", argv[2]);
      for (const PlatformId id : allPlatforms()) {
        std::fprintf(stderr, " %s", std::string(platformName(id)).c_str());
      }
      std::fprintf(stderr, "\n");
      return 1;
    }
  } else {
    platforms = {PlatformId::kBananaPiSim, PlatformId::kBananaPiHw,
                 PlatformId::kMilkVSim, PlatformId::kMilkVHw};
  }

  std::printf("%-12s", "kernel");
  for (const PlatformId p : platforms) {
    std::printf(" %18s", std::string(platformName(p)).c_str());
  }
  std::printf("   (time / IPC)\n");

  if (argc > 1) {
    runOne(argv[1], platforms);
    return 0;
  }

  // No kernel given: geometric-mean IPC per category across the suite.
  std::map<MicrobenchCategory, std::vector<std::vector<double>>> cat;
  for (const MicrobenchInfo& info : microbenchCatalog()) {
    if (info.excluded) continue;
    std::vector<double> row;
    for (const PlatformId p : platforms) {
      row.push_back(runMicrobench(p, info.name, 0.1).ipc);
    }
    cat[info.category].push_back(std::move(row));
  }
  for (const auto& [c, rows] : cat) {
    std::printf("%-12s", std::string(categoryName(c)).c_str());
    for (std::size_t i = 0; i < platforms.size(); ++i) {
      double logsum = 0.0;
      for (const auto& row : rows) logsum += std::log(row[i]);
      std::printf(" %18.3f",
                  std::exp(logsum / static_cast<double>(rows.size())));
    }
    std::printf("   (geomean IPC, %zu kernels)\n", rows.size());
  }
  return 0;
}
