// Cluster example: distribute LAMMPS across simulated nodes (the paper's
// future-work direction) and study how network quality changes scaling.
//
//   $ ./cluster_scaling
#include <cstdio>

#include "cluster/cluster.h"
#include "platforms/platforms.h"
#include "workloads/lammps.h"

int main() {
  using namespace bridge;
  const SocConfig node = makePlatform(PlatformId::kMilkVSim, 4);
  LammpsConfig lmp;
  lmp.atoms = 16000;

  std::printf("LAMMPS LJ across MilkVSim nodes (4 ranks/node)\n");
  std::printf("%-8s %18s %18s %18s\n", "nodes", "10Gbps/2us (ms)",
              "100Gbps/1us (ms)", "1Gbps/20us (ms)");
  for (const unsigned nodes : {1u, 2u, 4u}) {
    double ms[3];
    int i = 0;
    for (const auto& [gbps, us] :
         {std::pair{10.0, 2.0}, std::pair{100.0, 1.0},
          std::pair{1.0, 20.0}}) {
      ClusterConfig cc;
      cc.nodes = nodes;
      cc.ranks_per_node = 4;
      cc.network.bandwidth_gbps = gbps;
      cc.network.latency_us = us;
      const ClusterRunResult r = runClusterProgram(
          node, cc, [&](int rank, int nranks) {
            return makeLammpsRank(LammpsBenchmark::kLennardJones, rank,
                                  nranks, lmp);
          });
      ms[i++] = cyclesToSeconds(r.cycles, node.freq_ghz) * 1e3;
    }
    std::printf("%-8u %18.3f %18.3f %18.3f\n", nodes, ms[0], ms[1], ms[2]);
  }
  std::printf("\n(Halo exchanges cross node boundaries once the spatial "
              "decomposition spans nodes;\n a slow network erases the "
              "benefit of added nodes.)\n");
  return 0;
}
