// Tuning loop: automate the paper's §4 methodology.
//
// The paper tunes FireSim models by running microbenchmarks, finding the
// categories that diverge from silicon, and adjusting the matching
// parameters. This example automates one round of that loop: it scores a
// candidate set of Rocket-tile variants against the Banana Pi reference on
// a kernel subset and reports the best match per category.
//
//   $ ./tuning_loop [overrides.cfg]
//
// An optional "key = value" config file applies extra overrides to the
// base model (e.g. "l2.banks = 4", "bus.width_bits = 128"), the moral
// equivalent of a Chipyard config fragment.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "sim/config.h"
#include "soc/soc.h"
#include "workloads/microbench.h"

namespace {

using namespace bridge;

struct Candidate {
  std::string name;
  SocConfig cfg;
};

double kernelSeconds(const SocConfig& cfg, const std::string& kernel) {
  // Warm caches/predictors with a perturbed-seed instance first, like the
  // harness does, so scores reflect steady-state behaviour.
  Soc soc(cfg);
  auto warm = makeMicrobench(kernel, /*scale=*/0.15, /*seed=*/0x9E3779B9u);
  const Cycle warm_cycles = soc.runTrace(*warm);
  auto trace = makeMicrobench(kernel, /*scale=*/0.15);
  return soc.seconds(soc.runTrace(*trace) - warm_cycles);
}

/// Geometric-mean distance of relative speedup from 1.0 over a kernel set.
double score(const SocConfig& cfg, const std::vector<std::string>& kernels,
             const std::vector<double>& hw_seconds) {
  double log_sum = 0.0;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const double rel = hw_seconds[i] / kernelSeconds(cfg, kernels[i]);
    log_sum += std::fabs(std::log(rel));
  }
  return std::exp(log_sum / static_cast<double>(kernels.size()));
}

void applyOverrides(SocConfig* cfg, const Config& overrides) {
  cfg->mem.l2.banks = static_cast<unsigned>(
      overrides.getInt("l2.banks", cfg->mem.l2.banks));
  cfg->mem.bus.width_bits = static_cast<unsigned>(
      overrides.getInt("bus.width_bits", cfg->mem.bus.width_bits));
  cfg->mem.l1d.mshrs = static_cast<unsigned>(
      overrides.getInt("l1d.mshrs", cfg->mem.l1d.mshrs));
  cfg->freq_ghz = overrides.getDouble("freq_ghz", cfg->freq_ghz);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bridge;

  Config overrides;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    if (!overrides.parse(buf.str(), &err)) {
      std::fprintf(stderr, "bad config: %s\n", err.c_str());
      return 1;
    }
  }

  // The per-category probe kernels (one cheap representative each).
  const std::vector<std::string> kernels = {"Cca", "ED1", "DP1d", "ML2",
                                            "MM"};

  std::printf("Measuring the silicon reference (BananaPiHw)...\n");
  std::vector<double> hw_seconds;
  const SocConfig hw = makePlatform(PlatformId::kBananaPiHw, 1);
  for (const std::string& k : kernels) {
    hw_seconds.push_back(kernelSeconds(hw, k));
  }

  // Candidate tuning steps, mirroring the paper's Rocket1 -> Rocket2 ->
  // BananaPiSim -> FastBananaPiSim ladder plus two extra knobs.
  std::vector<Candidate> candidates;
  candidates.push_back({"Rocket1 (base)",
                        makePlatform(PlatformId::kRocket1, 1)});
  candidates.push_back({"+4 L2 banks", makePlatform(PlatformId::kRocket2, 1)});
  candidates.push_back({"+128-bit bus",
                        makePlatform(PlatformId::kBananaPiSim, 1)});
  candidates.push_back({"+2x clock",
                        makePlatform(PlatformId::kFastBananaPiSim, 1)});
  {
    SocConfig c = makePlatform(PlatformId::kBananaPiSim, 1);
    c.mem.l1d.mshrs = 8;
    candidates.push_back({"+8 MSHRs", c});
  }
  for (Candidate& c : candidates) applyOverrides(&c.cfg, overrides);

  std::printf("\n%-20s %10s   per-kernel relative speedup\n", "candidate",
              "score");
  for (const Candidate& c : candidates) {
    std::printf("%-20s %10.3f   ", c.name.c_str(),
                score(c.cfg, kernels, hw_seconds));
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      const double rel = hw_seconds[i] / kernelSeconds(c.cfg, kernels[i]);
      std::printf("%s=%.2f ", kernels[i].c_str(), rel);
    }
    std::printf("\n");
  }
  std::printf("\n(score = geometric mean distance from 1.0; lower is a "
              "better hardware match)\n");
  return 0;
}
