// Tuning loop: the paper's §4 methodology on the tune subsystem.
//
// Part 1 scores the paper's hand-built candidate ladder (Rocket1 ->
// Rocket2 -> BananaPiSim -> FastBananaPiSim, plus an MSHR variant) against
// the Banana Pi silicon reference with a FidelityObjective: per-kernel
// relative speedups aggregated into a log-space MAE, per category. This is
// the human-in-the-loop view: propose a step, re-measure, keep it if the
// profile moves toward silicon.
//
// Part 2 hands the same loop to the autotuner: greedy coordinate descent
// over the rocket memory-system ParamSpace, starting from Rocket1 — the
// paper's one-parameter-at-a-time discipline, automated. The full search
// driver (budgets, checkpoints, strategies) is bench/tune_bananapi.
//
//   $ ./tuning_loop [--jobs N] [--no-cache] [overrides.cfg]
//
// An optional "key = value" config file applies extra overrides on top of
// every ladder candidate (the moral equivalent of a Chipyard config
// fragment). Unknown keys are rejected (see applySocOverrides) — a typo
// cannot silently score the untouched model.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "tune/tuner.h"

namespace {

using namespace bridge;

struct Candidate {
  std::string name;
  PlatformId platform;
  Config overrides;
};

void printEval(const std::string& name, const FidelityEval& eval) {
  std::printf("%-20s %10.3f   ", name.c_str(), eval.error);
  for (const KernelFidelity& k : eval.kernels) {
    std::printf("%s=%.2f ", k.kernel.c_str(), k.rel);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bridge;
  const SweepCli cli = SweepCli::parse(argc, argv);

  Config file_overrides;
  if (!cli.rest.empty()) {
    std::ifstream in(cli.rest.front());
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", cli.rest.front().c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    if (!file_overrides.parse(buf.str(), &err)) {
      std::fprintf(stderr, "bad config: %s\n", err.c_str());
      return 1;
    }
  }

  // One cheap probe kernel per category keeps the example fast.
  FidelityOptions fopts;
  fopts.model = PlatformId::kRocket1;
  fopts.reference = PlatformId::kBananaPiHw;
  fopts.kernels = {"Cca", "ED1", "DP1d", "ML2", "MM"};
  FidelityObjective objective(fopts, cli.options);

  // The paper's Rocket1 -> Rocket2 -> BananaPiSim -> FastBananaPiSim ladder
  // plus an extra MSHR knob. The config file applies on top of every
  // candidate (later duplicates win, same as the old apply-last behaviour).
  std::vector<Candidate> candidates;
  candidates.push_back({"Rocket1 (base)", PlatformId::kRocket1, {}});
  candidates.push_back({"+4 L2 banks", PlatformId::kRocket2, {}});
  candidates.push_back({"+128-bit bus", PlatformId::kBananaPiSim, {}});
  candidates.push_back({"+2x clock", PlatformId::kFastBananaPiSim, {}});
  {
    Config mshrs;
    mshrs.set("l1d.mshrs", "8");
    candidates.push_back({"+8 MSHRs", PlatformId::kBananaPiSim, mshrs});
  }

  std::printf("Scoring the paper's candidate ladder vs BananaPiHw...\n\n");
  std::printf("%-20s %10s   per-kernel relative speedup\n", "candidate",
              "error");
  try {
    for (Candidate& c : candidates) {
      c.overrides.parse(file_overrides.toText());
      printEval(c.name, objective.evaluateOn(c.platform, c.overrides));
    }
  } catch (const std::invalid_argument& e) {
    // Typically a typo'd override key in the config file.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("\n(error = log-space MAE of relative speedup vs 1.0; lower "
              "is a better hardware match)\n");

  // Part 2: the same loop, automated. Coordinate descent walks one knob at
  // a time from Rocket1 — exactly the paper's §4 discipline.
  std::printf("\nAutomating the loop (coordinate descent from Rocket1)...\n");
  const ParamSpace space = rocketMemorySpace();
  TuneOptions topts;
  topts.budget = 40;
  CoordinateDescentTuner tuner(space, &objective, topts);
  const TuneResult result =
      tuner.run(space.startPoint(makePlatform(PlatformId::kRocket1, 1)));
  std::printf("%zu evaluations (stop: %s), best error %.3f at\n  %s\n",
              result.evaluations, result.stop_reason.c_str(),
              result.best_error, space.pointKey(result.best).c_str());
  std::printf("\n(full search driver with budgets, checkpoints and "
              "strategies: bench/tune_bananapi)\n");
  return 0;
}
