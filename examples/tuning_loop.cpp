// Tuning loop: automate the paper's §4 methodology.
//
// The paper tunes FireSim models by running microbenchmarks, finding the
// categories that diverge from silicon, and adjusting the matching
// parameters. This example automates one round of that loop: it scores a
// candidate set of Rocket-tile variants against the Banana Pi reference on
// a kernel subset and reports the best match per category. All (candidate x
// kernel) points run as one SweepEngine grid, so the loop parallelizes
// across worker threads and repeat invocations hit the result cache.
//
//   $ ./tuning_loop [--jobs N] [--no-cache] [overrides.cfg]
//
// An optional "key = value" config file applies extra overrides to the
// base model (e.g. "l2.banks = 4", "bus.width_bits = 128"), the moral
// equivalent of a Chipyard config fragment. Unknown keys are rejected (see
// applySocOverrides) — a typo cannot silently score the untouched model.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sweep/sweep.h"

namespace {

using namespace bridge;

struct Candidate {
  std::string name;
  PlatformId platform;
  Config overrides;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bridge;
  const SweepCli cli = SweepCli::parse(argc, argv);

  Config file_overrides;
  if (!cli.rest.empty()) {
    std::ifstream in(cli.rest.front());
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", cli.rest.front().c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    if (!file_overrides.parse(buf.str(), &err)) {
      std::fprintf(stderr, "bad config: %s\n", err.c_str());
      return 1;
    }
  }

  // The per-category probe kernels (one cheap representative each).
  const std::vector<std::string> kernels = {"Cca", "ED1", "DP1d", "ML2",
                                            "MM"};

  // Candidate tuning steps, mirroring the paper's Rocket1 -> Rocket2 ->
  // BananaPiSim -> FastBananaPiSim ladder plus two extra knobs. The config
  // file applies on top of every candidate.
  std::vector<Candidate> candidates;
  candidates.push_back({"Rocket1 (base)", PlatformId::kRocket1, {}});
  candidates.push_back({"+4 L2 banks", PlatformId::kRocket2, {}});
  candidates.push_back({"+128-bit bus", PlatformId::kBananaPiSim, {}});
  candidates.push_back({"+2x clock", PlatformId::kFastBananaPiSim, {}});
  {
    Config mshrs;
    mshrs.set("l1d.mshrs", "8");
    candidates.push_back({"+8 MSHRs", PlatformId::kBananaPiSim, mshrs});
  }
  for (Candidate& c : candidates) {
    // parse() keeps "later duplicates win" semantics, so the file wins over
    // candidate-specific knobs — same as the old apply-last behaviour.
    c.overrides.parse(file_overrides.toText());
  }

  std::printf("Measuring the silicon reference (BananaPiHw)...\n");
  std::vector<JobSpec> jobs;
  for (const std::string& k : kernels) {
    jobs.push_back(microbenchJob(PlatformId::kBananaPiHw, k, /*scale=*/0.15));
  }
  for (const Candidate& c : candidates) {
    for (const std::string& k : kernels) {
      JobSpec job = microbenchJob(c.platform, k, /*scale=*/0.15);
      job.overrides = c.overrides;
      job.label = c.name + "/" + k;
      jobs.push_back(job);
    }
  }
  std::vector<SweepResult> results;
  try {
    results = SweepEngine(cli.options).run(jobs);
  } catch (const std::invalid_argument& e) {
    // Typically a typo'd override key in the config file.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const std::size_t nk = kernels.size();
  std::printf("\n%-20s %10s   per-kernel relative speedup\n", "candidate",
              "score");
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    // Score: geometric-mean distance of relative speedup from 1.0.
    double log_sum = 0.0;
    std::vector<double> rel(nk);
    for (std::size_t i = 0; i < nk; ++i) {
      rel[i] = results[i].result.seconds /
               results[(c + 1) * nk + i].result.seconds;
      log_sum += std::fabs(std::log(rel[i]));
    }
    std::printf("%-20s %10.3f   ", candidates[c].name.c_str(),
                std::exp(log_sum / static_cast<double>(nk)));
    for (std::size_t i = 0; i < nk; ++i) {
      std::printf("%s=%.2f ", kernels[i].c_str(), rel[i]);
    }
    std::printf("\n");
  }
  std::printf("\n(score = geometric mean distance from 1.0; lower is a "
              "better hardware match)\n");
  return 0;
}
