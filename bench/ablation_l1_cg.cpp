// Ablation (paper §5.2.2): doubling the L1 caches from 32 KiB to 64 KiB
// on the Large BOOM configuration "improved CG benchmark performance ...
// reducing runtime by approximately 27.7%". This bench sweeps the L1 size
// on CG (and, as a control, on EP, which should barely move).
//
//   $ ./ablation_l1_cg [--jobs N] [--no-cache]
#include <cstdio>
#include <vector>

#include "sweep/sweep.h"

namespace {

using namespace bridge;

/// One NPB run on MilkVSim with both L1 caches resized to `sets`.
JobSpec l1Job(unsigned sets, NpbBenchmark bench) {
  JobSpec job = npbJob(PlatformId::kMilkVSim, bench, /*ranks=*/1);
  job.warmup = false;
  job.overrides.set("l1d.sets", std::to_string(sets));
  job.overrides.set("l1i.sets", std::to_string(sets));
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bridge;
  const SweepCli cli = SweepCli::parse(argc, argv);
  const unsigned set_counts[] = {64u, 128u, 256u};

  std::vector<JobSpec> jobs;
  for (const unsigned sets : set_counts) {
    jobs.push_back(l1Job(sets, NpbBenchmark::kCG));
    jobs.push_back(l1Job(sets, NpbBenchmark::kEP));
  }
  const std::vector<SweepResult> results = SweepEngine(cli.options).run(jobs);

  std::printf("Ablation: L1 size on the MILK-V simulation model (1 rank)\n");
  std::printf("%-12s %14s %14s\n", "L1 (KiB)", "CG (ms)", "EP (ms)");
  double cg32 = 0.0, cg64 = 0.0;
  std::size_t j = 0;
  for (const unsigned sets : set_counts) {
    const double cg = results[j++].result.seconds;
    const double ep = results[j++].result.seconds;
    if (sets == 64) cg32 = cg;
    if (sets == 128) cg64 = cg;
    std::printf("%-12u %14.3f %14.3f\n", sets * 8 * 64 / 1024, cg * 1e3,
                ep * 1e3);
  }
  std::printf("\nCG runtime reduction from 32->64 KiB: %.1f%% "
              "(paper reports ~27.7%%)\n",
              100.0 * (cg32 - cg64) / cg32);
  return 0;
}
