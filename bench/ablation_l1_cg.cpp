// Ablation (paper §5.2.2): doubling the L1 caches from 32 KiB to 64 KiB
// on the Large BOOM configuration "improved CG benchmark performance ...
// reducing runtime by approximately 27.7%". This bench sweeps the L1 size
// on CG (and, as a control, on EP, which should barely move).
#include <cstdio>

#include "harness/experiment.h"
#include "soc/soc.h"
#include "mpi/mpi.h"
#include "workloads/npb.h"

namespace {

using namespace bridge;

double cgSeconds(unsigned l1_sets, NpbBenchmark bench) {
  SocConfig cfg = makePlatform(PlatformId::kMilkVSim, 4);
  cfg.mem.l1d.sets = l1_sets;
  cfg.mem.l1i.sets = l1_sets;
  Soc soc(cfg);
  NpbConfig ncfg;
  const MpiRunResult r = runMpiProgram(&soc, 1, [&](int rank, int nranks) {
    return makeNpbRank(bench, rank, nranks, ncfg);
  });
  return soc.seconds(r.cycles);
}

}  // namespace

int main() {
  using namespace bridge;
  std::printf("Ablation: L1 size on the MILK-V simulation model (1 rank)\n");
  std::printf("%-12s %14s %14s\n", "L1 (KiB)", "CG (ms)", "EP (ms)");
  double cg32 = 0.0, cg64 = 0.0;
  for (const unsigned sets : {64u, 128u, 256u}) {
    const double cg = cgSeconds(sets, NpbBenchmark::kCG);
    const double ep = cgSeconds(sets, NpbBenchmark::kEP);
    if (sets == 64) cg32 = cg;
    if (sets == 128) cg64 = cg;
    std::printf("%-12u %14.3f %14.3f\n", sets * 8 * 64 / 1024, cg * 1e3,
                ep * 1e3);
  }
  std::printf("\nCG runtime reduction from 32->64 KiB: %.1f%% "
              "(paper reports ~27.7%%)\n",
              100.0 * (cg32 - cg64) / cg32);
  return 0;
}
