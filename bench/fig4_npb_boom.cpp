// Regenerates Figure 4: (a) NPB on the stock BOOM configurations vs the
// MILK-V hardware reference; (b) the tuned MILK-V simulation model at 1
// and 4 ranks.
#include <iostream>
#include <string_view>

#include "harness/figures.h"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string_view(argv[1]) == "--csv";
  for (const bridge::Figure& fig :
       {bridge::computeFig4a(0.3), bridge::computeFig4b(0.3)}) {
    if (csv) {
      bridge::renderCsv(std::cout, fig);
    } else {
      bridge::renderFigure(std::cout, fig);
      std::cout << '\n';
    }
  }
  return 0;
}
