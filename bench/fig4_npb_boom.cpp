// Regenerates Figure 4: (a) NPB on the stock BOOM configurations vs the
// MILK-V hardware reference; (b) the tuned MILK-V simulation model at 1
// and 4 ranks.
//
//   $ ./fig4_npb_boom [--csv] [--jobs N] [--no-cache]
#include <iostream>

#include "harness/figures.h"

int main(int argc, char** argv) {
  const bridge::SweepCli cli = bridge::SweepCli::parse(argc, argv);
  for (const bridge::Figure& fig : {bridge::computeFig4a(0.3, cli.options),
                                    bridge::computeFig4b(0.3, cli.options)}) {
    if (cli.csv) {
      bridge::renderCsv(std::cout, fig);
    } else {
      bridge::renderFigure(std::cout, fig);
      std::cout << '\n';
    }
  }
  return 0;
}
