// Regenerates Figure 1: MicroBench relative performance of the Banana Pi
// simulation models (BananaPiSim, FastBananaPiSim) vs the Banana Pi
// hardware reference, for all 39 evaluated kernels.
//
//   $ ./fig1_microbench_bananapi [--csv] [--jobs N] [--no-cache]
#include <iostream>

#include "harness/figures.h"

int main(int argc, char** argv) {
  const bridge::SweepCli cli = bridge::SweepCli::parse(argc, argv);
  const bridge::Figure fig = bridge::computeFig1(/*scale=*/0.3, cli.options);
  if (cli.csv) {
    bridge::renderCsv(std::cout, fig);
  } else {
    bridge::renderFigure(std::cout, fig);
  }
  return 0;
}
