// Regenerates Figure 1: MicroBench relative performance of the Banana Pi
// simulation models (BananaPiSim, FastBananaPiSim) vs the Banana Pi
// hardware reference, for all 39 evaluated kernels.
#include <iostream>
#include <string_view>

#include "harness/figures.h"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string_view(argv[1]) == "--csv";
  const bridge::Figure fig = bridge::computeFig1(/*scale=*/0.3);
  if (csv) {
    bridge::renderCsv(std::cout, fig);
  } else {
    bridge::renderFigure(std::cout, fig);
  }
  return 0;
}
