// Regenerates the full paper-vs-model validation table (the data behind
// EXPERIMENTS.md): every quantitative claim in the paper's evaluation, the
// band it implies, and where this reproduction lands.
#include <iostream>

#include "harness/calibration.h"

int main() {
  const auto results = bridge::runCalibration(/*scale=*/0.15);
  bridge::renderCalibration(std::cout, results);
  return 0;
}
