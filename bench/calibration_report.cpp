// Regenerates the full paper-vs-model validation table (the data behind
// EXPERIMENTS.md): every quantitative claim in the paper's evaluation, the
// band it implies, and where this reproduction lands.
//
//   $ ./calibration_report [--jobs N] [--no-cache]
#include <iostream>

#include "harness/calibration.h"

int main(int argc, char** argv) {
  const bridge::SweepCli cli = bridge::SweepCli::parse(argc, argv);
  const auto results = bridge::runCalibration(/*scale=*/0.15, cli.options);
  bridge::renderCalibration(std::cout, results);
  return 0;
}
