// Regenerates Table 5: hardware vs simulation-model specifications.
#include <iostream>

#include "harness/figures.h"

int main() {
  bridge::renderTable5(std::cout);
  return 0;
}
