// sim_speed: the simulator-speed trajectory, full fidelity vs sampled
// execution (DESIGN §5i) -> BENCH_sim.json.
//
//   sim_speed [--out FILE] [--check] [--scale F]
//             [--bound-micro F] [--bound-npb F] [--bound-lammps F]
//             [sweep flags: --jobs, --sampling, ...]
//
// For each workload class (MicroBench probes, NPB kernels, LAMMPS) every
// job is executed twice on a cache-bypassing engine — once at full
// fidelity, once sampled — and timed. The JSON records, per class and per
// kernel: simulated cycles, wall seconds, simulated-cycles-per-second of
// wall time, the sampled/full wall-time speedup, and the sampled-vs-full
// relative cycle error. The sampled run must be *faster* (that is its only
// reason to exist) and *close* (the documented error model): --check turns
// both into exit codes, failing when any kernel's error exceeds its
// class bound (defaults: 5% MicroBench, 8% NPB, 8% LAMMPS). The sampling
// parameters come from --sampling / $BRIDGE_SAMPLING, defaulting to the
// stock SamplingParams, and are recorded in the JSON so a checked-in
// BENCH_sim.json names the configuration that produced it.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/sampling/sampling.h"
#include "sweep/job.h"
#include "sweep/sweep.h"

namespace bridge {
namespace {

struct KernelRow {
  std::string name;
  Cycle full_cycles = 0;
  Cycle sampled_cycles = 0;
  double full_wall_s = 0.0;
  double sampled_wall_s = 0.0;

  double relError() const {
    if (full_cycles == 0) return 0.0;
    const double f = static_cast<double>(full_cycles);
    const double s = static_cast<double>(sampled_cycles);
    return (s > f ? s - f : f - s) / f;
  }
  double speedup() const {
    return sampled_wall_s > 0.0 ? full_wall_s / sampled_wall_s : 0.0;
  }
};

struct ClassRow {
  std::string name;
  double error_bound = 0.0;
  std::vector<KernelRow> kernels;

  Cycle fullCycles() const {
    Cycle t = 0;
    for (const KernelRow& k : kernels) t += k.full_cycles;
    return t;
  }
  Cycle sampledCycles() const {
    Cycle t = 0;
    for (const KernelRow& k : kernels) t += k.sampled_cycles;
    return t;
  }
  double fullWall() const {
    double t = 0.0;
    for (const KernelRow& k : kernels) t += k.full_wall_s;
    return t;
  }
  double sampledWall() const {
    double t = 0.0;
    for (const KernelRow& k : kernels) t += k.sampled_wall_s;
    return t;
  }
  double speedup() const {
    return sampledWall() > 0.0 ? fullWall() / sampledWall() : 0.0;
  }
  double maxRelError() const {
    double e = 0.0;
    for (const KernelRow& k : kernels) e = std::max(e, k.relError());
    return e;
  }
};

double wallSeconds(const std::chrono::steady_clock::time_point& begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

/// One timed execution; exits on job failure — a speed trajectory over
/// failed jobs would be meaningless.
Cycle timedRun(SweepEngine& engine, const JobSpec& job, double* wall_s) {
  const auto begin = std::chrono::steady_clock::now();
  const SweepResult r = engine.runOne(job);
  *wall_s = wallSeconds(begin);
  if (!r.ok()) {
    std::fprintf(stderr, "sim_speed: job '%s' failed: %s\n", job.label.c_str(),
                 r.error.c_str());
    std::exit(1);
  }
  return r.result.cycles;
}

std::vector<JobSpec> classJobs(const std::string& cls, double scale) {
  std::vector<JobSpec> jobs;
  if (cls == "microbench") {
    for (const char* kernel : {"MM", "STL2", "ED1", "MIM", "DP1d", "ML2"}) {
      jobs.push_back(microbenchJob(PlatformId::kRocket1, kernel, scale));
    }
  } else if (cls == "npb") {
    // Both paper platforms (Fig. 3 Rocket-class, Fig. 4 BOOM-class): the
    // in-order rows bound the speedup from below (their detailed path is
    // only a few times the cost of functional warming), the BOOM rows
    // from above.
    jobs.push_back(npbJob(PlatformId::kBananaPiSim, NpbBenchmark::kCG,
                          /*ranks=*/2, scale));
    jobs.push_back(npbJob(PlatformId::kBananaPiSim, NpbBenchmark::kMG,
                          /*ranks=*/2, scale));
    jobs.push_back(npbJob(PlatformId::kMilkVSim, NpbBenchmark::kCG,
                          /*ranks=*/2, scale));
    jobs.push_back(npbJob(PlatformId::kMilkVSim, NpbBenchmark::kMG,
                          /*ranks=*/2, scale));
    jobs.push_back(npbJob(PlatformId::kMilkVSim, NpbBenchmark::kEP,
                          /*ranks=*/2, scale));
    jobs.push_back(npbJob(PlatformId::kMilkVSim, NpbBenchmark::kIS,
                          /*ranks=*/2, scale));
  } else if (cls == "lammps") {
    LammpsConfig cfg;
    cfg.scale = scale;
    jobs.push_back(lammpsJob(PlatformId::kBananaPiSim,
                             LammpsBenchmark::kLennardJones, /*ranks=*/2,
                             cfg));
  }
  return jobs;
}

void printMode(std::FILE* out, const char* name, Cycle cycles, double wall) {
  std::fprintf(out,
               "      \"%s\": {\"cycles\": %llu, \"wall_s\": %.3f, "
               "\"sim_cycles_per_sec\": %.0f}",
               name, static_cast<unsigned long long>(cycles), wall,
               wall > 0.0 ? static_cast<double>(cycles) / wall : 0.0);
}

void writeJson(std::FILE* out, const SamplingParams& sampling,
               const std::vector<ClassRow>& classes) {
  std::fprintf(out, "{\n  \"bench\": \"sim_speed\",\n");
  std::fprintf(out, "  \"sampling\": \"%s\",\n",
               sampling.specString().c_str());
  std::fprintf(out, "  \"classes\": {\n");
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const ClassRow& row = classes[c];
    std::fprintf(out, "    \"%s\": {\n", row.name.c_str());
    std::fprintf(out, "      \"jobs\": %zu,\n", row.kernels.size());
    std::fprintf(out, "      \"error_bound\": %.2f,\n", row.error_bound);
    printMode(out, "full", row.fullCycles(), row.fullWall());
    std::fprintf(out, ",\n");
    printMode(out, "sampled", row.sampledCycles(), row.sampledWall());
    std::fprintf(out, ",\n");
    std::fprintf(out, "      \"speedup\": %.2f,\n", row.speedup());
    std::fprintf(out, "      \"max_rel_cycle_error\": %.4f,\n",
                 row.maxRelError());
    std::fprintf(out, "      \"kernels\": {\n");
    for (std::size_t k = 0; k < row.kernels.size(); ++k) {
      const KernelRow& kr = row.kernels[k];
      std::fprintf(out,
                   "        \"%s\": {\"full_cycles\": %llu, "
                   "\"sampled_cycles\": %llu, \"rel_error\": %.4f, "
                   "\"speedup\": %.2f}%s\n",
                   kr.name.c_str(),
                   static_cast<unsigned long long>(kr.full_cycles),
                   static_cast<unsigned long long>(kr.sampled_cycles),
                   kr.relError(), kr.speedup(),
                   k + 1 < row.kernels.size() ? "," : "");
    }
    std::fprintf(out, "      }\n");
    std::fprintf(out, "    }%s\n", c + 1 < classes.size() ? "," : "");
  }
  std::fprintf(out, "  }\n}\n");
}

int run(int argc, char** argv) {
  SweepCli cli = SweepCli::parse(argc, argv);

  std::string out_path = "BENCH_sim.json";
  bool check = false;
  double scale = 0.5;
  double bound_micro = 0.05;
  double bound_npb = 0.08;
  double bound_lammps = 0.08;
  for (std::size_t i = 0; i < cli.rest.size(); ++i) {
    const std::string& arg = cli.rest[i];
    auto value = [&](double* slot) {
      if (i + 1 >= cli.rest.size()) {
        std::fprintf(stderr, "sim_speed: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      *slot = std::atof(cli.rest[++i].c_str());
    };
    if (arg == "--out" && i + 1 < cli.rest.size()) {
      out_path = cli.rest[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--scale") {
      value(&scale);
    } else if (arg == "--bound-micro") {
      value(&bound_micro);
    } else if (arg == "--bound-npb") {
      value(&bound_npb);
    } else if (arg == "--bound-lammps") {
      value(&bound_lammps);
    } else {
      std::fprintf(stderr, "sim_speed: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  // The trajectory measures execution, never the cache.
  SweepOptions full_opts = cli.options;
  full_opts.use_cache = false;
  full_opts.sampling = SamplingParams{};
  SweepOptions sampled_opts = full_opts;
  sampled_opts.sampling =
      cli.options.sampling.enabled ? cli.options.sampling : SamplingParams{};
  if (!sampled_opts.sampling.enabled) {
    sampled_opts.sampling.enabled = true;  // stock parameters
  }

  SweepEngine full_engine(full_opts);
  SweepEngine sampled_engine(sampled_opts);

  std::vector<ClassRow> classes;
  const struct {
    const char* name;
    double bound;
  } kClasses[] = {{"microbench", bound_micro},
                  {"npb", bound_npb},
                  {"lammps", bound_lammps}};
  for (const auto& cls : kClasses) {
    ClassRow row;
    row.name = cls.name;
    row.error_bound = cls.bound;
    for (const JobSpec& job : classJobs(cls.name, scale)) {
      KernelRow kr;
      kr.name = job.label;
      kr.full_cycles = timedRun(full_engine, job, &kr.full_wall_s);
      kr.sampled_cycles = timedRun(sampled_engine, job, &kr.sampled_wall_s);
      std::printf("%-40s full %12llu cyc %7.3fs | sampled %12llu cyc "
                  "%7.3fs | x%.2f err %.4f\n",
                  kr.name.c_str(),
                  static_cast<unsigned long long>(kr.full_cycles),
                  kr.full_wall_s,
                  static_cast<unsigned long long>(kr.sampled_cycles),
                  kr.sampled_wall_s, kr.speedup(), kr.relError());
      row.kernels.push_back(kr);
    }
    std::printf("[%s] speedup x%.2f, max rel cycle error %.4f (bound %.2f)\n",
                row.name.c_str(), row.speedup(), row.maxRelError(),
                row.error_bound);
    classes.push_back(row);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "sim_speed: cannot write %s\n", out_path.c_str());
    return 1;
  }
  writeJson(out, sampled_opts.sampling, classes);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (check) {
    int failures = 0;
    for (const ClassRow& row : classes) {
      for (const KernelRow& kr : row.kernels) {
        if (kr.relError() > row.error_bound) {
          std::fprintf(stderr,
                       "sim_speed: CHECK FAILED: %s rel cycle error %.4f "
                       "exceeds %s bound %.2f\n",
                       kr.name.c_str(), kr.relError(), row.name.c_str(),
                       row.error_bound);
          ++failures;
        }
      }
    }
    if (failures) return 1;
    std::printf("check passed: every kernel within its error bound\n");
  }
  return 0;
}

}  // namespace
}  // namespace bridge

int main(int argc, char** argv) { return bridge::run(argc, argv); }
