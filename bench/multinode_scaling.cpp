// Future-work study (paper §7): multi-node FireSim simulation. Scales NPB
// EP / CG / MG from 1 to 8 nodes (4 ranks per node, total work fixed) on
// the Banana Pi simulation model connected by a 10 Gbps network — the
// study the paper proposes running on the BxE cluster / AWS FPGAs.
#include <cstdio>

#include "cluster/cluster.h"
#include "platforms/platforms.h"
#include "workloads/npb.h"

int main() {
  using namespace bridge;
  std::printf("Multi-node scaling on BananaPiSim nodes (4 ranks/node, "
              "10 Gbps / 2 us network)\n");
  std::printf("%-6s %14s %14s %14s %16s\n", "nodes", "EP (ms)", "CG (ms)",
              "MG (ms)", "inter-node msgs");

  for (const unsigned nodes : {1u, 2u, 4u, 8u}) {
    ClusterConfig cc;
    cc.nodes = nodes;
    cc.ranks_per_node = 4;
    double ms[3];
    std::uint64_t msgs = 0;
    int i = 0;
    for (const NpbBenchmark b :
         {NpbBenchmark::kEP, NpbBenchmark::kCG, NpbBenchmark::kMG}) {
      NpbConfig cfg;
      cfg.scale = 0.5;
      const SocConfig node = makePlatform(PlatformId::kBananaPiSim, 4);
      const ClusterRunResult r = runClusterProgram(
          node, cc, [&](int rank, int nranks) {
            return makeNpbRank(b, rank, nranks, cfg);
          });
      ms[i++] = cyclesToSeconds(r.cycles, node.freq_ghz) * 1e3;
      msgs += r.inter_messages;
    }
    std::printf("%-6u %14.3f %14.3f %14.3f %16llu\n", nodes, ms[0], ms[1],
                ms[2], static_cast<unsigned long long>(msgs));
  }
  std::printf("\n(EP scales nearly ideally; CG's per-iteration allreduces "
              "and MG's halo exchanges\n pay the network's latency and "
              "bandwidth as node count grows.)\n");
  return 0;
}
