// Regenerates Figure 7: LAMMPS Polymer-Chain relative speedup at 1/2/4
// ranks for both platform pairs, with the paper's reported values.
//
//   $ ./fig7_lammps_chain [--jobs N] [--no-cache]
#include <cstdio>
#include <iostream>

#include "harness/figures.h"
#include "harness/reference_data.h"

int main(int argc, char** argv) {
  using namespace bridge;
  const SweepCli cli = SweepCli::parse(argc, argv);
  renderFigure(std::cout, computeFig7(/*scale=*/1.0, cli.options));

  std::printf("\nPaper-reported relative speedups (§5.4):\n");
  for (const PaperRuntime& r : paperRuntimes()) {
    if (r.workload != "lammps-chain") continue;
    std::printf("  %-9s %d ranks: %.3f (hw %.1fs / sim %.1fs)\n",
                std::string(r.pair).c_str(), r.ranks, r.relativeSpeedup(),
                r.hw_seconds, r.sim_seconds);
  }
  return 0;
}
