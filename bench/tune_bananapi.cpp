// Autotune the Rocket FireSim model against the Banana Pi silicon
// reference — the paper's §4 calibration loop, mechanized (DESIGN.md §5c).
//
// Starting from Rocket1, the tuner searches the rocket memory-system space
// (L2 banks, bus width, MSHRs, DRAM queue depths) to minimize the fidelity
// error (log-space MAE of per-kernel relative speedups) against BananaPiHw
// on the per-category probe kernels. The run must rediscover the paper's
// Rocket1 -> Rocket2 -> BananaPiSim trajectory — more L2 banks and a wider
// bus helping the cache/memory categories — and is expected to end at
// least as close to silicon on the memory category as the paper's
// hand-built BananaPiSim model. Exit status reports that comparison
// (0 = tuned >= hand-built), so the binary doubles as a regression check.
//
//   $ ./tune_bananapi [--jobs N] [--no-cache] [--csv]
//                     [--strategy cd|anneal|random] [--budget N]
//                     [--stagnation N] [--seed N] [--seed-probes N]
//                     [--scale F] [--checkpoint FILE]
//
// --seed-probes N makes coordinate descent score N seeded random probes
// first and descend from the best of {start, probes} — the escape hatch
// for start-point basins on plateaued spaces (a fixed --seed still yields
// a bit-identical trajectory).
//
// With --checkpoint, an interrupted run resumes without repeating work and
// reproduces the uninterrupted trajectory bit-identically (the evaluation
// ledger is replayed; the search re-runs deterministically on top).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "tune/tuner.h"

namespace {

using namespace bridge;

struct TuneCliArgs {
  std::string strategy = "cd";
  TuneOptions tune;
  double scale = 0.15;
};

[[noreturn]] void usageError(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  std::exit(2);
}

long positiveIntOr(const std::string& flag, const std::string& text) {
  const std::optional<long> n = parsePositiveInt(text);
  if (!n) {
    usageError("invalid " + flag + " value '" + text +
               "' (expected an integer in [1, 1000000])");
  }
  return *n;
}

TuneCliArgs parseTuneArgs(const std::vector<std::string>& rest) {
  TuneCliArgs out;
  out.tune.budget = 200;
  out.tune.stagnation = 0;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& arg = rest[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= rest.size()) usageError(arg + " requires a value");
      return rest[++i];
    };
    if (arg == "--strategy") {
      out.strategy = value();
    } else if (arg == "--budget") {
      out.tune.budget = static_cast<std::size_t>(positiveIntOr(arg, value()));
    } else if (arg == "--stagnation") {
      out.tune.stagnation =
          static_cast<std::size_t>(positiveIntOr(arg, value()));
    } else if (arg == "--seed") {
      out.tune.seed = static_cast<std::uint64_t>(positiveIntOr(arg, value()));
    } else if (arg == "--seed-probes") {
      out.tune.seed_probes =
          static_cast<std::size_t>(positiveIntOr(arg, value()));
    } else if (arg == "--scale") {
      const std::string& text = value();
      char* end = nullptr;
      out.scale = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0' || out.scale <= 0.0) {
        usageError("invalid --scale value '" + text + "'");
      }
    } else if (arg == "--checkpoint") {
      out.tune.checkpoint = value();
    } else {
      usageError("unknown argument: " + arg);
    }
  }
  return out;
}

void printEval(const FidelityEval& eval, const char* label) {
  std::printf("%-24s error=%.4f  per-category:", label, eval.error);
  for (std::size_t c = 0; c < kMicrobenchCategoryCount; ++c) {
    if (eval.category_count[c] == 0) continue;
    std::printf(" %s=%.4f",
                std::string(categoryName(static_cast<MicrobenchCategory>(c)))
                    .c_str(),
                eval.category_error[c]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bridge;
  const SweepCli cli = SweepCli::parse(argc, argv);
  TuneCliArgs args = parseTuneArgs(cli.rest);

  const ParamSpace space = rocketMemorySpace();
  FidelityOptions fopts;
  fopts.model = PlatformId::kRocket1;
  fopts.reference = PlatformId::kBananaPiHw;
  fopts.scale = args.scale;
  FidelityObjective objective(fopts, cli.options);

  const ParamPoint start = space.startPoint(makePlatform(PlatformId::kRocket1, 1));

  std::printf("Tuning %s -> %s | strategy=%s budget=%zu scale=%.2f\n",
              std::string(platformName(fopts.model)).c_str(),
              std::string(platformName(fopts.reference)).c_str(),
              args.strategy.c_str(), args.tune.budget, args.scale);
  std::printf("space: %s (%zu points)\n", space.signature().c_str(),
              space.cardinality());
  std::printf("start: %s\n\n", space.pointKey(start).c_str());

  if (cli.csv) {
    std::printf("eval,error,best,candidate\n");
  }
  args.tune.on_eval = [&](std::size_t index, const TuneEval& eval,
                          bool improved, bool fresh) {
    if (cli.csv) {
      std::printf("%zu,%.6f,%d,\"%s\"\n", index, eval.error, improved ? 1 : 0,
                  space.pointKey(eval.point).c_str());
    } else if (improved) {
      std::printf("  eval %3zu%s  error=%.4f  <- new best: %s\n", index,
                  fresh ? "" : " (replayed)", eval.error,
                  space.pointKey(eval.point).c_str());
    }
  };

  // Bad --strategy values and stale/corrupt --checkpoint files throw; both
  // are user input, so report them as CLI errors rather than aborting.
  std::unique_ptr<Tuner> tuner;
  TuneResult result;
  try {
    tuner = makeTuner(args.strategy, space, &objective, args.tune);
    result = tuner->run(start);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("\n%zu evaluations (%zu fresh), stop: %s\n", result.evaluations,
              result.objective_calls, result.stop_reason.c_str());
  std::printf("best: %s\n\n", space.pointKey(result.best).c_str());

  // Error trajectory summary: the best-so-far curve at a few waypoints.
  double best_so_far = result.trajectory.empty()
                           ? 0.0
                           : result.trajectory.front().error;
  std::printf("error trajectory (best-so-far):");
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    if (result.trajectory[i].error < best_so_far) {
      best_so_far = result.trajectory[i].error;
    }
    if (i == 0 || i + 1 == result.trajectory.size() || (i + 1) % 10 == 0) {
      std::printf(" [%zu]=%.4f", i + 1, best_so_far);
    }
  }
  std::printf("\n\n");

  FidelityEval start_eval = objective.evaluate(space.overrides(start));
  FidelityEval best_eval = objective.evaluate(result.best_overrides);
  FidelityEval handbuilt = objective.evaluateOn(PlatformId::kBananaPiSim, {});
  printEval(start_eval, "Rocket1 (start)");
  printEval(best_eval, "tuned best");
  printEval(handbuilt, "BananaPiSim (hand-built)");

  std::printf("\n%-8s %-12s %10s %10s %10s\n", "kernel", "category",
              "rel(start)", "rel(tuned)", "rel(hand)");
  for (std::size_t i = 0; i < best_eval.kernels.size(); ++i) {
    std::printf("%-8s %-12s %10.3f %10.3f %10.3f\n",
                best_eval.kernels[i].kernel.c_str(),
                std::string(categoryName(best_eval.kernels[i].category)).c_str(),
                start_eval.kernels[i].rel, best_eval.kernels[i].rel,
                handbuilt.kernels[i].rel);
  }

  std::printf("\nbest config overrides:\n%s",
              result.best_overrides.toText().c_str());

  const auto mem = static_cast<std::size_t>(MicrobenchCategory::kMemory);
  const bool pass =
      best_eval.category_error[mem] <= handbuilt.category_error[mem] + 1e-12;
  std::printf("\nmemory-category fidelity: tuned %.4f vs hand-built %.4f -> "
              "%s\n",
              best_eval.category_error[mem], handbuilt.category_error[mem],
              pass ? "PASS (tuned >= hand-built)" : "FAIL");
  return pass ? 0 : 1;
}
