// sweep-worker: elastic execution worker as a foreground CLI (DESIGN §5h).
//
// Usage:
//   sweep_worker [--connect PATH] [--name NAME] [--jobs N] [--drain]
//                [sweep flags]
//
// Connects to the sweep daemon on --connect (default: $BRIDGE_WORKER_SOCKET,
// $BRIDGE_SERVE_SOCKET, or build/sweep-serve.sock), upgrades the connection
// to bridge-serve-2 with role "worker", and pulls admitted jobs under
// leases until SIGTERM/SIGINT, the daemon drains, or — with --drain — the
// queue runs dry. Execution slots come from --jobs (default: BRIDGE_JOBS or
// all cores). The failure-policy flags (--retries, --timeout, --strict) and
// $BRIDGE_CHAOS must match the daemon's: the policy-signature handshake
// refuses a mismatched worker before it can claim anything. The result
// cache is taken from the daemon's hello, so every process in the
// deployment writes through one sharded tree.
//
// Workers join and leave freely: killing one (even with SIGKILL) only
// orphans its leases, which the daemon re-admits elsewhere.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/worker.h"
#include "sweep/sweep.h"

namespace {

bridge::serve::SweepWorker* g_worker = nullptr;

// requestStop() is a lone atomic store, so it is safe to call here.
void onSignal(int) {
  if (g_worker != nullptr) g_worker->requestStop();
}

}  // namespace

int main(int argc, char** argv) {
  bridge::SweepCli cli = bridge::SweepCli::parse(argc, argv);

  bridge::serve::WorkerOptions options;
  options.sweep = cli.options;
  for (std::size_t i = 0; i < cli.rest.size(); ++i) {
    const std::string& arg = cli.rest[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= cli.rest.size()) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(2);
      }
      return cli.rest[++i];
    };
    if (arg == "--connect") {
      options.socket_path = value("--connect");
    } else if (arg.rfind("--connect=", 0) == 0) {
      options.socket_path = arg.substr(10);
    } else if (arg == "--name") {
      options.name = value("--name");
    } else if (arg.rfind("--name=", 0) == 0) {
      options.name = arg.substr(7);
    } else if (arg == "--drain") {
      options.drain = true;
    } else if (arg == "--help") {
      std::printf(
          "usage: sweep_worker [--connect PATH] [--name NAME] [--jobs N]\n"
          "                    [--retries N] [--timeout S] [--strict]\n"
          "                    [--drain]\n");
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (options.name.empty()) {
    options.name = "worker-" + std::to_string(::getpid());
  }

  try {
    bridge::serve::SweepWorker worker(options);
    g_worker = &worker;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    const bridge::serve::WorkerReport report = worker.run();
    g_worker = nullptr;
    std::printf("sweep-worker %s: %s\n", options.name.c_str(),
                report.summary().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
