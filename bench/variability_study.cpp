// Variability study: run-to-run and core-to-core spread per kernel under
// the seeded hardware-variability model (sim/hwvar, harness/variability.h).
//
//   $ ./variability_study [--csv] [--jobs N] [--no-cache]
//                         [--scale S] [--replicas N] [--placements N]
//                         [--hwvar SPEC] [--serve PATH]
//
// --hwvar sets the *study's* base variability spec (default: the stock
// model, enabled). The emitted spread table is seeded and bit-reproducible:
// any --jobs N, worker count, or rerun prints identical numbers.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "harness/variability.h"

namespace {

double parseScale(const std::string& text) {
  char* end = nullptr;
  const double s = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || !(s > 0.0)) {
    std::fprintf(stderr, "error: invalid --scale value '%s'\n", text.c_str());
    std::exit(2);
  }
  return s;
}

unsigned parseCount(const char* flag, const std::string& text) {
  const std::optional<long> n = bridge::parsePositiveInt(text);
  if (!n) {
    std::fprintf(stderr, "error: invalid %s value '%s'\n", flag, text.c_str());
    std::exit(2);
  }
  return static_cast<unsigned>(*n);
}

}  // namespace

int main(int argc, char** argv) {
  bridge::SweepCli cli = bridge::SweepCli::parse(argc, argv);
  bridge::VariabilityStudyOptions opts;

  // --hwvar (or $BRIDGE_HWVAR) names the study's base spec, not an
  // engine-level rewrite: move it off the sweep options so the figure
  // harness does not warn about (and strip) it.
  if (cli.options.hwvar.enabled) opts.hwvar = cli.options.hwvar;
  cli.options.hwvar = bridge::HwVarParams{};

  for (std::size_t i = 0; i < cli.rest.size(); ++i) {
    const std::string& arg = cli.rest[i];
    const auto value = [&](const char* flag) -> const std::string& {
      if (i + 1 >= cli.rest.size()) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(2);
      }
      return cli.rest[++i];
    };
    if (arg == "--scale") {
      opts.scale = parseScale(value("--scale"));
    } else if (arg == "--replicas") {
      opts.replicas = parseCount("--replicas", value("--replicas"));
    } else if (arg == "--placements") {
      opts.placements = parseCount("--placements", value("--placements"));
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  const bridge::Figure fig = bridge::computeVariabilitySpread(opts, cli.options);
  if (cli.csv) {
    bridge::renderCsv(std::cout, fig);
  } else {
    bridge::renderFigure(std::cout, fig);
  }
  return 0;
}
