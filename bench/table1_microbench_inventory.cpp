// Regenerates Table 1: the MicroBench kernel inventory.
#include <iostream>

#include "harness/figures.h"

int main() {
  bridge::renderTable1(std::cout);
  return 0;
}
