// NPB-driven autotune: descend from the MicroBench-tuned models and
// optimize the metric the paper actually reports (DESIGN.md §5e).
//
// The candidate lives in combinedPlatformSpace() and is scored by
// NpbObjective: six coupled components (CG/IS/MG at 1 and 4 ranks, each
// averaging the rocket-vs-BananaPiHw and boom-vs-MilkVHw log errors). The
// search starts from the MicroBench-tuned pair — BananaPiSim + MilkVSim
// projected into the space — and runs the ParetoTuner in annealing mode
// (NPB evaluations are ~100x MicroBench cost; the per-leg quota keeps
// every scalarization direction probed within the budget, and schema-v3
// checkpointing makes an interrupted run resume bit-identically — even a
// degraded run whose skip set rides along in the checkpoint).
//
// The run PASSES (exit 0) only when the best front member strictly beats
// the MicroBench-tuned start point on the tuned-set mean NPB error — i.e.
// tuning on the application workloads improved on the microbenchmark
// proxy. It always reports the held-out EP generalization error of both
// configs: EP is never part of the objective, so that number is a true
// generalization measure.
//
//   $ ./tune_npb [--jobs N] [--no-cache] [--csv] [--budget N] [--seed N]
//                [--scale F] [--mg-top N] [--cap N] [--checkpoint FILE]
//                [--strict] [--retries N] [--timeout S]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "tune/npb_objective.h"
#include "tune/pareto.h"

namespace {

using namespace bridge;

struct NpbCliArgs {
  ParetoOptions tune;
  NpbConfig run = npbTuningConfig();
};

[[noreturn]] void usageError(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  std::exit(2);
}

long positiveIntOr(const std::string& flag, const std::string& text) {
  const std::optional<long> n = parsePositiveInt(text);
  if (!n) {
    usageError("invalid " + flag + " value '" + text +
               "' (expected an integer in [1, 1000000])");
  }
  return *n;
}

NpbCliArgs parseNpbArgs(const std::vector<std::string>& rest) {
  NpbCliArgs out;
  out.tune.budget = 48;
  out.tune.descent = ParetoDescent::kAnnealing;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& arg = rest[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= rest.size()) usageError(arg + " requires a value");
      return rest[++i];
    };
    if (arg == "--budget") {
      out.tune.budget = static_cast<std::size_t>(positiveIntOr(arg, value()));
    } else if (arg == "--seed") {
      out.tune.seed = static_cast<std::uint64_t>(positiveIntOr(arg, value()));
    } else if (arg == "--cap") {
      out.tune.archive_cap =
          static_cast<std::size_t>(positiveIntOr(arg, value()));
    } else if (arg == "--mg-top") {
      out.run.mg_top = static_cast<unsigned>(positiveIntOr(arg, value()));
    } else if (arg == "--scale") {
      const std::string& text = value();
      char* end = nullptr;
      out.run.scale = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0' || out.run.scale <= 0.0) {
        usageError("invalid --scale value '" + text + "'");
      }
    } else if (arg == "--checkpoint") {
      out.tune.checkpoint = value();
    } else {
      usageError("unknown argument: " + arg);
    }
  }
  return out;
}

double meanError(const std::vector<double>& errors) {
  double sum = 0.0;
  for (const double e : errors) sum += e;
  return sum / static_cast<double>(errors.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bridge;
  const SweepCli cli = SweepCli::parse(argc, argv);
  NpbCliArgs args = parseNpbArgs(cli.rest);

  const ParamSpace space = combinedPlatformSpace();
  NpbObjectiveOptions nopts;
  nopts.run = args.run;

  // The MicroBench-tuned models are the paper's §4 output: BananaPiSim on
  // the rocket side, MilkVSim on the boom side. Projected into the space
  // they are both exact (every knob separating them from the stock bases
  // is a space dimension), so the start point IS the microbench baseline.
  const PlatformId start_rocket = PlatformId::kBananaPiSim;
  const PlatformId start_boom = PlatformId::kMilkVSim;

  std::printf("NPB tune: %s+%s vs %s+%s | budget=%zu scale=%.2f mg_top=%u "
              "cap=%zu descent=annealing\n",
              std::string(platformName(nopts.rocket_model)).c_str(),
              std::string(platformName(nopts.boom_model)).c_str(),
              std::string(platformName(nopts.rocket_reference)).c_str(),
              std::string(platformName(nopts.boom_reference)).c_str(),
              args.tune.budget, args.run.scale, args.run.mg_top,
              args.tune.archive_cap);

  // Bad flags and stale/corrupt --checkpoint files throw; both are user
  // input, so report them as CLI errors rather than aborting.
  try {
    NpbObjective objective(nopts, cli.options);

    std::printf("components:");
    for (const NpbGridCell& cell : objective.components()) {
      std::printf(" %s", npbCellName(cell).c_str());
    }
    std::printf("  (held out: %s)\n",
                std::string(npbName(nopts.held_out)).c_str());

    const ParamPoint start = combinedStartPoint(
        space, makePlatform(start_rocket, 1), makePlatform(start_boom, 1));
    std::printf("space: %zu dims, %zu points\nstart: %s\n\n", space.dims(),
                space.cardinality(), space.pointKey(start).c_str());

    if (cli.csv) {
      std::printf("eval,mean_error,entered,candidate\n");
    }
    args.tune.on_eval = [&](std::size_t index, const ParetoEntry& eval,
                            bool entered, bool fresh) {
      if (cli.csv) {
        std::printf("%zu,%.6f,%d,\"%s\"\n", index, meanError(eval.errors),
                    entered ? 1 : 0, space.pointKey(eval.point).c_str());
      } else if (entered) {
        std::printf("  eval %3zu%s  mean=%.4f  -> archive\n", index,
                    fresh ? "" : " (replayed)", meanError(eval.errors));
      }
    };

    ParetoTuner tuner(space, &objective, args.tune);
    const ParetoResult result = tuner.run(start);

    std::printf("\n%zu evaluations (%zu fresh), stop: %s\n",
                result.evaluations, result.objective_calls,
                result.stop_reason.c_str());
    if (!result.skipped.empty()) {
      // Degraded run: some components were penalty-scored, not measured.
      // Name them — the front's errors are only comparable with that caveat.
      std::printf("DEGRADED: %zu component(s) penalty-scored [policy %s]:",
                  result.skipped.size(),
                  objective.policySignature().c_str());
      for (const std::string& s : result.skipped) {
        std::printf(" %s", s.c_str());
      }
      std::printf("\n");
    }

    // The start point is always the run's first evaluation, so its errors
    // are in the trajectory — no extra simulation needed.
    const double start_mean = meanError(result.trajectory.front().errors);

    std::printf("\nPareto front (%zu nondominated points):\n",
                result.front.size());
    const ParetoEntry* best = nullptr;
    for (const ParetoEntry& e : result.front) {
      const double mean = meanError(e.errors);
      if (best == nullptr || mean < meanError(best->errors)) best = &e;
      std::printf("  mean=%.4f  [", mean);
      for (std::size_t i = 0; i < e.errors.size(); ++i) {
        std::printf("%s%.4f", i == 0 ? "" : " ", e.errors[i]);
      }
      std::printf("]  %s\n", space.pointKey(e.point).c_str());
    }
    if (best == nullptr) {
      std::fprintf(stderr, "error: empty Pareto front\n");
      return 2;
    }
    const double best_mean = meanError(best->errors);

    // Held-out validation: EP was never part of the objective, so these
    // numbers measure generalization, not fit.
    const Config best_cfg = space.overrides(best->point);
    const Config start_cfg = space.overrides(start);
    const double held_best = objective.heldOut(best_cfg).error;
    const double held_start = objective.heldOut(start_cfg).error;

    std::printf("\ntuned-set mean error:  start=%.4f  best=%.4f\n",
                start_mean, best_mean);
    std::printf("held-out %s error:     start=%.4f  best=%.4f  "
                "(generalization)\n",
                std::string(npbName(nopts.held_out)).c_str(), held_start,
                held_best);

    if (best_mean < start_mean - 1e-12) {
      std::printf("PASS: NPB-tuned config beats the MicroBench-tuned start "
                  "(%.4f -> %.4f)\n",
                  start_mean, best_mean);
      std::printf("winning overrides:\n%s", best_cfg.toText().c_str());
      return 0;
    }
    std::printf("FAIL: no front member beats the MicroBench-tuned start "
                "point\n");
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
