// sweep-serve: the sweep daemon as a foreground CLI (DESIGN.md §5g).
//
// Usage:
//   sweep_serve [--socket PATH] [--cache-dir DIR] [--jobs N] [sweep flags]
//   sweep_serve --drain [--socket PATH]     ask a running daemon to drain
//   sweep_serve --stats [--socket PATH]     print a running daemon's counters
//   sweep_serve --ping  [--socket PATH]     liveness probe
//   sweep_serve --bench [--out FILE]        scripted benchmark -> BENCH_serve.json
//
// Default mode runs the daemon in the foreground on --socket (default:
// $BRIDGE_SERVE_SOCKET or build/sweep-serve.sock) until SIGTERM/SIGINT or a
// client `shutdown` frame. Shutdown is always graceful: in-flight jobs run
// to completion and the final lifetime RunReport is printed before exit.
// The failure-policy flags shared with every bench driver (--retries,
// --timeout, --strict, --no-cache) configure the daemon's engine, and
// therefore its policySignature() — clients with a different policy are
// refused at handshake.
//
// --bench spins an in-process daemon on a scratch cache and measures the
// serve path end to end: requests/sec with a cold vs warm cache, response
// latency percentiles at 1/4/8 concurrent clients, and the in-flight dedup
// ratio when 4 clients race the same fresh grid. Results land in
// BENCH_serve.json (override with --out) as a baseline for later PRs.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/daemon.h"
#include "sweep/job.h"
#include "sweep/sweep.h"
#include "workloads/microbench.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void onSignal(int) { g_signal = 1; }

using bridge::JobSpec;
using bridge::RunReport;
using bridge::SweepCli;
using bridge::serve::DaemonOptions;
using bridge::serve::ServeClient;
using bridge::serve::ServeStats;
using bridge::serve::SweepDaemon;

int serveForever(const DaemonOptions& options) {
  SweepDaemon daemon(options);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  // Signal handlers only set a flag (requestStop takes locks and is not
  // async-signal-safe); the foreground loop polls it.
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::printf("sweep-serve: listening on %s (%u workers, policy %s)\n",
              daemon.socketPath().c_str(), daemon.engine().workers(),
              daemon.policySignature().c_str());
  std::fflush(stdout);
  while (g_signal == 0 && !daemon.stopping()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  daemon.requestStop();
  daemon.join();
  const ServeStats stats = daemon.stats();
  std::printf("sweep-serve: drained; %s\n", stats.summary().c_str());
  std::printf("sweep-serve: final report: %s\n",
              stats.report.summary().c_str());
  return 0;
}

int drainDaemon(const std::string& socket) {
  ServeClient client(socket);
  const RunReport report = client.shutdownDaemon();
  std::printf("sweep-serve: daemon on %s drained; final report: %s\n",
              socket.c_str(), report.summary().c_str());
  return 0;
}

int printStats(const std::string& socket) {
  ServeClient client(socket);
  const ServeStats stats = client.stats();
  std::printf("sweep-serve %s: %s\n", socket.c_str(),
              stats.summary().c_str());
  std::printf("sweep-serve %s: report: %s\n", socket.c_str(),
              stats.report.summary().c_str());
  return 0;
}

int pingDaemon(const std::string& socket) {
  ServeClient client(socket);
  client.ping();
  std::printf("sweep-serve: daemon on %s is alive (policy %s, %llu workers)\n",
              socket.c_str(), client.hello().policy.c_str(),
              static_cast<unsigned long long>(client.hello().workers));
  return 0;
}

// ---------------------------------------------------------------------------
// --bench: scripted measurement -> BENCH_serve.json

std::vector<JobSpec> benchGrid(std::uint64_t seed) {
  // A small, cheap, representative grid: the first 8 evaluation kernels at
  // quarter scale. Overlap across clients is total — every client asks for
  // the same cells, which is exactly the daemon's reason to exist.
  const std::vector<std::string> kernels = bridge::microbenchNames();
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < kernels.size() && i < 8; ++i) {
    jobs.push_back(bridge::microbenchJob(bridge::PlatformId::kRocket1,
                                         kernels[i], 0.25, seed));
  }
  return jobs;
}

double percentileMs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

/// Each of `clients` threads opens its own connection and submits every job
/// of `grid` as its own request, `repeats` times. Returns per-request
/// latencies in milliseconds.
std::vector<double> latencyPhase(const std::string& socket,
                                 const std::vector<JobSpec>& grid,
                                 unsigned clients, unsigned repeats) {
  std::vector<double> latencies;
  std::mutex mu;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      ServeClient client(socket);
      std::vector<double> mine;
      for (unsigned r = 0; r < repeats; ++r) {
        for (const JobSpec& job : grid) {
          const auto start = std::chrono::steady_clock::now();
          client.run({job});
          mine.push_back(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count());
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), mine.begin(), mine.end());
    });
  }
  for (std::thread& t : threads) t.join();
  return latencies;
}

int runBench(const SweepCli& cli, std::string socket, std::string out_path) {
  if (socket.empty()) socket = "build/sweep-serve-bench.sock";
  if (out_path.empty()) out_path = "BENCH_serve.json";
  const std::string cache_dir = cli.options.cache_dir.empty()
                                    ? "build/serve-bench-cache"
                                    : cli.options.cache_dir;
  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);  // the cold pass must be cold

  DaemonOptions options;
  options.socket_path = socket;
  options.sweep = cli.options;
  options.sweep.cache_dir = cache_dir;
  options.sweep.use_cache = true;
  options.sweep.serve_socket.clear();
  SweepDaemon daemon(options);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  const std::vector<JobSpec> grid = benchGrid(/*seed=*/1);
  const auto requestsPerSec = [&](const std::vector<double>& lat_ms) {
    double total_ms = 0.0;
    for (const double ms : lat_ms) total_ms += ms;
    return total_ms > 0.0 ? 1000.0 * static_cast<double>(lat_ms.size()) /
                                total_ms
                          : 0.0;
  };

  std::printf("sweep-serve bench: cold pass (%zu jobs)...\n", grid.size());
  const std::vector<double> cold = latencyPhase(socket, grid, 1, 1);
  std::printf("sweep-serve bench: warm pass...\n");
  const std::vector<double> warm = latencyPhase(socket, grid, 1, 1);

  struct LatencyRow {
    unsigned clients;
    double p50;
    double p95;
  };
  std::vector<LatencyRow> rows;
  for (const unsigned clients : {1u, 4u, 8u}) {
    std::printf("sweep-serve bench: latency at %u client(s)...\n", clients);
    const std::vector<double> lat = latencyPhase(socket, grid, clients, 3);
    rows.push_back(
        {clients, percentileMs(lat, 0.50), percentileMs(lat, 0.95)});
  }

  // Dedup phase: 4 clients race a grid of *fresh* fingerprints, so every
  // job is either the one admitted execution or an attach to it.
  std::printf("sweep-serve bench: dedup phase (4 clients, fresh grid)...\n");
  const ServeStats before = daemon.stats();
  {
    const std::vector<JobSpec> fresh = benchGrid(/*seed=*/4242);
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < 4; ++c) {
      threads.emplace_back([&] {
        ServeClient client(socket);
        client.run(fresh);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const ServeStats after = daemon.stats();
  const double dedup_jobs =
      static_cast<double>(after.jobs - before.jobs);
  const double dedup_ratio =
      dedup_jobs > 0.0
          ? static_cast<double>(after.attached - before.attached) / dedup_jobs
          : 0.0;

  daemon.requestStop();
  daemon.join();
  const ServeStats stats = daemon.stats();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"sweep_serve\",\n");
  std::fprintf(f, "  \"grid_jobs\": %zu,\n", grid.size());
  std::fprintf(f, "  \"workers\": %u,\n", daemon.engine().workers());
  std::fprintf(f, "  \"cold_requests_per_sec\": %.2f,\n",
               requestsPerSec(cold));
  std::fprintf(f, "  \"warm_requests_per_sec\": %.2f,\n",
               requestsPerSec(warm));
  std::fprintf(f, "  \"dedup_ratio\": %.4f,\n", dedup_ratio);
  std::fprintf(f, "  \"latency_ms\": {\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "    \"clients_%u\": {\"p50\": %.3f, \"p95\": %.3f}%s\n",
                 rows[i].clients, rows[i].p50, rows[i].p95,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"daemon\": {\"connections\": %llu, \"requests\": %llu, "
               "\"jobs\": %llu, \"admitted\": %llu, \"attached\": %llu, "
               "\"executed\": %llu, \"cache_hits\": %llu}\n",
               static_cast<unsigned long long>(stats.connections),
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.jobs),
               static_cast<unsigned long long>(stats.admitted),
               static_cast<unsigned long long>(stats.attached),
               static_cast<unsigned long long>(stats.executed),
               static_cast<unsigned long long>(stats.cache_hits));
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf(
      "sweep-serve bench: cold %.1f req/s, warm %.1f req/s, dedup %.2f "
      "-> %s\n",
      requestsPerSec(cold), requestsPerSec(warm), dedup_ratio,
      out_path.c_str());
  std::printf("sweep-serve bench: daemon %s\n", stats.summary().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SweepCli cli = SweepCli::parse(argc, argv);

  std::string socket;
  std::string out_path;
  bool drain = false, stats = false, ping = false, bench = false;
  const std::vector<std::string> rest = std::move(cli.rest);
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& arg = rest[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(2);
      }
      return rest[++i];
    };
    if (arg == "--socket") {
      socket = value("--socket");
    } else if (arg.rfind("--socket=", 0) == 0) {
      socket = arg.substr(9);
    } else if (arg == "--cache-dir") {
      cli.options.cache_dir = value("--cache-dir");
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      cli.options.cache_dir = arg.substr(12);
    } else if (arg == "--out") {
      out_path = value("--out");
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--drain") {
      drain = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--ping") {
      ping = true;
    } else if (arg == "--bench") {
      bench = true;
    } else if (arg == "--help") {
      std::printf(
          "usage: sweep_serve [--socket PATH] [--cache-dir DIR] [--jobs N]\n"
          "                   [--retries N] [--timeout S] [--strict] "
          "[--no-cache]\n"
          "       sweep_serve --drain|--stats|--ping [--socket PATH]\n"
          "       sweep_serve --bench [--out FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (socket.empty() && !bench) socket = SweepDaemon::defaultSocketPath();

  try {
    if (drain) return drainDaemon(socket);
    if (stats) return printStats(socket);
    if (ping) return pingDaemon(socket);
    if (bench) return runBench(cli, socket, out_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  DaemonOptions options;
  options.socket_path = socket;
  options.sweep = cli.options;
  options.sweep.serve_socket.clear();  // the daemon executes locally
  return serveForever(options);
}
