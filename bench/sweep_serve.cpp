// sweep-serve: the sweep daemon as a foreground CLI (DESIGN.md §5g).
//
// Usage:
//   sweep_serve [--socket PATH] [--cache-dir DIR] [--jobs N] [sweep flags]
//   sweep_serve --drain [--socket PATH]     ask a running daemon to drain
//   sweep_serve --stats [--socket PATH]     print a running daemon's counters
//   sweep_serve --ping  [--socket PATH]     liveness probe
//   sweep_serve --bench [--out FILE]        scripted benchmark -> BENCH_serve.json
//
// Default mode runs the daemon in the foreground on --socket (default:
// $BRIDGE_SERVE_SOCKET or build/sweep-serve.sock) until SIGTERM/SIGINT or a
// client `shutdown` frame. Shutdown is always graceful: in-flight jobs run
// to completion and the final lifetime RunReport is printed before exit.
// The failure-policy flags shared with every bench driver (--retries,
// --timeout, --strict, --no-cache) configure the daemon's engine, and
// therefore its policySignature() — clients with a different policy are
// refused at handshake.
//
// The daemon is elastic (DESIGN §5h): `sweep_worker` processes may attach
// over the same socket, upgrade to bridge-serve-2, and pull admitted jobs
// under leases. --stats negotiates the upgrade too and prints the elastic
// counters (workers, claimed, leases expired, orphans re-admitted) when the
// daemon grants it, falling back to the v1 counter line against an older
// daemon.
//
// --bench spins an in-process daemon on a scratch cache and measures the
// serve path end to end: requests/sec with a cold vs warm cache, response
// latency percentiles at 1/4/8 concurrent clients, the in-flight dedup
// ratio when 4 clients race the same fresh grid, cold/warm throughput at
// 0/1/2/4 attached workers, the orphan-recovery time when a worker dies
// holding a lease, and the daemon-recovery numbers (journal replay count,
// restart-to-first-result/convergence, duplicate executions — must be 0)
// for a daemon restarted over a crash's write-ahead journal (DESIGN §5k).
// Results land in BENCH_serve.json (override with --out) as a baseline for
// later PRs.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/journal.h"
#include "serve/worker.h"
#include "sweep/fingerprint.h"
#include "sweep/job.h"
#include "sweep/sweep.h"
#include "workloads/microbench.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void onSignal(int) { g_signal = 1; }

using bridge::JobSpec;
using bridge::RunReport;
using bridge::SweepCli;
using bridge::serve::DaemonOptions;
using bridge::serve::LeaseGrant;
using bridge::serve::ServeClient;
using bridge::serve::ServeStats;
using bridge::serve::SweepDaemon;
using bridge::serve::SweepWorker;
using bridge::serve::WorkerOptions;

std::string elasticSummary(const ServeStats& stats) {
  return std::to_string(stats.workers) + " workers, " +
         std::to_string(stats.claimed) + " claimed (" +
         std::to_string(stats.completed_remote) + " completed remote, " +
         std::to_string(stats.leases_expired) + " leases expired, " +
         std::to_string(stats.orphans_readmitted) + " orphans re-admitted)";
}

int serveForever(const DaemonOptions& options) {
  SweepDaemon daemon(options);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  // Signal handlers only set a flag (requestStop takes locks and is not
  // async-signal-safe); the foreground loop polls it.
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::printf("sweep-serve: listening on %s (%u workers, policy %s)\n",
              daemon.socketPath().c_str(), daemon.engine().workers(),
              daemon.policySignature().c_str());
  std::fflush(stdout);
  while (g_signal == 0 && !daemon.stopping()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  daemon.requestStop();
  daemon.join();
  const ServeStats stats = daemon.stats();
  std::printf("sweep-serve: drained; %s\n", stats.summary().c_str());
  std::printf("sweep-serve: elastic: %s\n", elasticSummary(stats).c_str());
  std::printf("sweep-serve: final report: %s\n",
              stats.report.summary().c_str());
  return 0;
}

int drainDaemon(const std::string& socket) {
  ServeClient client(socket);
  const RunReport report = client.shutdownDaemon();
  std::printf("sweep-serve: daemon on %s drained; final report: %s\n",
              socket.c_str(), report.summary().c_str());
  return 0;
}

int printStats(const std::string& socket) {
  ServeStats stats;
  bool elastic = false;
  try {
    // Upgrade in band: a v2 daemon serializes the elastic counters on a
    // negotiated connection.
    ServeClient client(socket);
    client.negotiate("client", /*policy=*/"", "sweep-serve-stats");
    stats = client.stats();
    elastic = true;
  } catch (const std::exception&) {
    // A v1-only daemon answers `error` to the hello frame and drops the
    // connection; reconnect and speak plain bridge-serve-1.
    ServeClient client(socket);
    stats = client.stats();
  }
  std::printf("sweep-serve %s: %s\n", socket.c_str(),
              stats.summary().c_str());
  if (elastic) {
    std::printf("sweep-serve %s: elastic: %s\n", socket.c_str(),
                elasticSummary(stats).c_str());
  }
  std::printf("sweep-serve %s: report: %s\n", socket.c_str(),
              stats.report.summary().c_str());
  return 0;
}

int pingDaemon(const std::string& socket) {
  ServeClient client(socket);
  client.ping();
  std::printf("sweep-serve: daemon on %s is alive (policy %s, %llu workers)\n",
              socket.c_str(), client.hello().policy.c_str(),
              static_cast<unsigned long long>(client.hello().workers));
  return 0;
}

// ---------------------------------------------------------------------------
// --bench: scripted measurement -> BENCH_serve.json

std::vector<JobSpec> benchGrid(std::uint64_t seed) {
  // A small, cheap, representative grid: the first 8 evaluation kernels at
  // quarter scale. Overlap across clients is total — every client asks for
  // the same cells, which is exactly the daemon's reason to exist.
  const std::vector<std::string> kernels = bridge::microbenchNames();
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < kernels.size() && i < 8; ++i) {
    jobs.push_back(bridge::microbenchJob(bridge::PlatformId::kRocket1,
                                         kernels[i], 0.25, seed));
  }
  return jobs;
}

double percentileMs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

/// Each of `clients` threads opens its own connection and submits every job
/// of `grid` as its own request, `repeats` times. Returns per-request
/// latencies in milliseconds.
std::vector<double> latencyPhase(const std::string& socket,
                                 const std::vector<JobSpec>& grid,
                                 unsigned clients, unsigned repeats) {
  std::vector<double> latencies;
  std::mutex mu;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      ServeClient client(socket);
      std::vector<double> mine;
      for (unsigned r = 0; r < repeats; ++r) {
        for (const JobSpec& job : grid) {
          const auto start = std::chrono::steady_clock::now();
          client.run({job});
          mine.push_back(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count());
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), mine.begin(), mine.end());
    });
  }
  for (std::thread& t : threads) t.join();
  return latencies;
}

int runBench(const SweepCli& cli, std::string socket, std::string out_path) {
  if (socket.empty()) socket = "build/sweep-serve-bench.sock";
  if (out_path.empty()) out_path = "BENCH_serve.json";
  const std::string cache_dir = cli.options.cache_dir.empty()
                                    ? "build/serve-bench-cache"
                                    : cli.options.cache_dir;
  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);  // the cold pass must be cold

  DaemonOptions options;
  options.socket_path = socket;
  options.sweep = cli.options;
  options.sweep.cache_dir = cache_dir;
  options.sweep.use_cache = true;
  options.sweep.serve_socket.clear();
  SweepDaemon daemon(options);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  const std::vector<JobSpec> grid = benchGrid(/*seed=*/1);
  const auto requestsPerSec = [&](const std::vector<double>& lat_ms) {
    double total_ms = 0.0;
    for (const double ms : lat_ms) total_ms += ms;
    return total_ms > 0.0 ? 1000.0 * static_cast<double>(lat_ms.size()) /
                                total_ms
                          : 0.0;
  };

  std::printf("sweep-serve bench: cold pass (%zu jobs)...\n", grid.size());
  const std::vector<double> cold = latencyPhase(socket, grid, 1, 1);
  std::printf("sweep-serve bench: warm pass...\n");
  const std::vector<double> warm = latencyPhase(socket, grid, 1, 1);

  struct LatencyRow {
    unsigned clients;
    double p50;
    double p95;
  };
  std::vector<LatencyRow> rows;
  for (const unsigned clients : {1u, 4u, 8u}) {
    std::printf("sweep-serve bench: latency at %u client(s)...\n", clients);
    const std::vector<double> lat = latencyPhase(socket, grid, clients, 3);
    rows.push_back(
        {clients, percentileMs(lat, 0.50), percentileMs(lat, 0.95)});
  }

  // Dedup phase: 4 clients race a grid of *fresh* fingerprints, so every
  // job is either the one admitted execution or an attach to it.
  std::printf("sweep-serve bench: dedup phase (4 clients, fresh grid)...\n");
  const ServeStats before = daemon.stats();
  {
    const std::vector<JobSpec> fresh = benchGrid(/*seed=*/4242);
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < 4; ++c) {
      threads.emplace_back([&] {
        ServeClient client(socket);
        client.run(fresh);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const ServeStats after = daemon.stats();
  const double dedup_jobs =
      static_cast<double>(after.jobs - before.jobs);
  const double dedup_ratio =
      dedup_jobs > 0.0
          ? static_cast<double>(after.attached - before.attached) / dedup_jobs
          : 0.0;

  // Worker-scaling phase: the same daemon, with 0/1/2/4 elastic workers
  // attached in-process. Each round uses a fresh-seed grid so its cold pass
  // is really cold; p50/p95 come from warm repeats.
  struct ScalingRow {
    unsigned workers;
    double cold_rps;
    double warm_rps;
    double p50;
    double p95;
  };
  const auto pollWorkers = [&](std::uint64_t want) {
    for (int spins = 0; spins < 5000 && daemon.stats().workers != want;
         ++spins) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  std::vector<ScalingRow> scaling;
  std::uint64_t scale_seed = 7000;
  for (const unsigned nworkers : {0u, 1u, 2u, 4u}) {
    std::printf("sweep-serve bench: workers scaling at %u worker(s)...\n",
                nworkers);
    std::vector<std::unique_ptr<SweepWorker>> workers;
    std::vector<std::thread> worker_threads;
    for (unsigned w = 0; w < nworkers; ++w) {
      WorkerOptions wopts;
      wopts.socket_path = socket;
      wopts.name = "bench-worker-" + std::to_string(w);
      wopts.sweep = cli.options;
      wopts.sweep.workers = 2;
      workers.push_back(std::make_unique<SweepWorker>(wopts));
      worker_threads.emplace_back(
          [worker = workers.back().get()] { worker->run(); });
    }
    pollWorkers(nworkers);
    const std::vector<JobSpec> fresh = benchGrid(scale_seed++);
    const std::vector<double> scold = latencyPhase(socket, fresh, 1, 1);
    const std::vector<double> swarm = latencyPhase(socket, fresh, 1, 1);
    const std::vector<double> slat = latencyPhase(socket, fresh, 1, 3);
    scaling.push_back({nworkers, requestsPerSec(scold), requestsPerSec(swarm),
                       percentileMs(slat, 0.50), percentileMs(slat, 0.95)});
    for (auto& worker : workers) worker->requestStop();
    for (std::thread& t : worker_threads) t.join();
    workers.clear();  // closes the worker connections -> deregistered
    pollWorkers(0);
  }

  // Orphan-recovery phase: a worker dies (socket drop == what SIGKILL
  // looks like from the daemon's side) while holding a lease; measure
  // death -> every result delivered. A second daemon with a short lease
  // window keeps queue aging from dominating the measurement.
  std::printf("sweep-serve bench: orphan recovery (killed worker)...\n");
  DaemonOptions orphan_options;
  orphan_options.socket_path = socket + ".orphan";
  orphan_options.sweep = cli.options;
  orphan_options.sweep.cache_dir = cache_dir + "-orphan";
  orphan_options.sweep.use_cache = true;
  orphan_options.sweep.serve_socket.clear();
  orphan_options.lease_ms = 150;
  std::filesystem::remove_all(orphan_options.sweep.cache_dir, ec);
  SweepDaemon orphan_daemon(orphan_options);
  double orphan_recovery_ms = 0.0;
  std::uint64_t orphans_readmitted = 0;
  if (orphan_daemon.start(&error)) {
    auto doomed = std::make_unique<ServeClient>(orphan_options.socket_path);
    doomed->negotiate("worker", orphan_daemon.policySignature(), "doomed");
    const std::vector<JobSpec> orphan_grid = benchGrid(/*seed=*/9001);
    std::thread submitter([&] {
      ServeClient client(orphan_options.socket_path);
      client.run(orphan_grid);
    });
    // Claim one job, then die holding its lease.
    std::vector<LeaseGrant> grants;
    bool orphan_draining = false;
    for (int spins = 0; spins < 5000 && grants.empty(); ++spins) {
      grants = doomed->claim(1, &orphan_draining);
      if (grants.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    const auto killed_at = std::chrono::steady_clock::now();
    doomed.reset();  // the daemon sees the drop and re-admits the orphan
    submitter.join();
    orphan_recovery_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - killed_at)
                             .count();
    orphan_daemon.requestStop();
    orphan_daemon.join();
    orphans_readmitted = orphan_daemon.stats().orphans_readmitted;
  } else {
    std::fprintf(stderr, "warning: orphan phase skipped: %s\n", error.c_str());
  }

  // Daemon-recovery phase (DESIGN §5k): fabricate the crash artifact — a
  // write-ahead journal whose admits never completed, exactly what a
  // SIGKILLed daemon leaves behind — and measure the restart: time to the
  // first replayed result, time to full convergence, and the duplicate-
  // execution count (the acceptance identity demands 0). A resubmitting
  // client afterwards must be served entirely from the recovered cache.
  std::printf("sweep-serve bench: daemon recovery (journal replay)...\n");
  DaemonOptions rec_options;
  rec_options.socket_path = socket + ".recover";
  rec_options.sweep = cli.options;
  rec_options.sweep.cache_dir = cache_dir + "-recover";
  rec_options.sweep.use_cache = true;
  rec_options.sweep.serve_socket.clear();
  std::filesystem::remove_all(rec_options.sweep.cache_dir, ec);
  const std::vector<JobSpec> rec_grid = benchGrid(/*seed=*/13013);
  double restart_first_result_ms = 0.0;
  double restart_converged_ms = 0.0;
  std::uint64_t journal_replayed = 0;
  std::uint64_t duplicate_executions = 0;
  std::uint64_t resubmit_executed = 0;
  {
    bridge::serve::AdmissionJournal wal;
    std::string wal_error;
    if (wal.open(rec_options.sweep.cache_dir + "/journal", &wal_error)) {
      for (const JobSpec& job : rec_grid) {
        wal.admit(bridge::jobFingerprint(job), job);
      }
      wal.close();
    } else {
      std::fprintf(stderr, "warning: recovery journal not created: %s\n",
                   wal_error.c_str());
    }
  }
  SweepDaemon rec_daemon(rec_options);
  const auto restarted_at = std::chrono::steady_clock::now();
  if (rec_daemon.start(&error)) {
    const auto elapsed_ms = [&] {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - restarted_at)
          .count();
    };
    const auto waitTotal = [&](std::uint64_t want) {
      for (int spins = 0;
           spins < 60000 && rec_daemon.stats().report.total < want; ++spins) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    };
    waitTotal(1);
    restart_first_result_ms = elapsed_ms();
    waitTotal(rec_grid.size());
    restart_converged_ms = elapsed_ms();
    // A client resubmitting the interrupted sweep must find everything
    // already done: zero fresh executions, pure cache service.
    const ServeStats before_resubmit = rec_daemon.stats();
    try {
      ServeClient client(rec_options.socket_path);
      client.run(rec_grid);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: recovery resubmit failed: %s\n",
                   e.what());
    }
    const ServeStats after_resubmit = rec_daemon.stats();
    resubmit_executed = after_resubmit.executed - before_resubmit.executed;
    rec_daemon.requestStop();
    rec_daemon.join();
    const ServeStats rec_stats = rec_daemon.stats();
    journal_replayed = rec_stats.journal_replayed;
    const std::uint64_t total_exec =
        rec_stats.executed + rec_stats.completed_remote;
    duplicate_executions =
        total_exec > rec_grid.size() ? total_exec - rec_grid.size() : 0;
  } else {
    std::fprintf(stderr, "warning: recovery phase skipped: %s\n",
                 error.c_str());
  }

  daemon.requestStop();
  daemon.join();
  const ServeStats stats = daemon.stats();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"sweep_serve\",\n");
  std::fprintf(f, "  \"grid_jobs\": %zu,\n", grid.size());
  std::fprintf(f, "  \"workers\": %u,\n", daemon.engine().workers());
  std::fprintf(f, "  \"cold_requests_per_sec\": %.2f,\n",
               requestsPerSec(cold));
  std::fprintf(f, "  \"warm_requests_per_sec\": %.2f,\n",
               requestsPerSec(warm));
  std::fprintf(f, "  \"dedup_ratio\": %.4f,\n", dedup_ratio);
  std::fprintf(f, "  \"latency_ms\": {\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "    \"clients_%u\": {\"p50\": %.3f, \"p95\": %.3f}%s\n",
                 rows[i].clients, rows[i].p50, rows[i].p95,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"workers_scaling\": {\n");
  for (const ScalingRow& row : scaling) {
    std::fprintf(f,
                 "    \"workers_%u\": {\"cold_requests_per_sec\": %.2f, "
                 "\"warm_requests_per_sec\": %.2f, \"p50\": %.3f, "
                 "\"p95\": %.3f},\n",
                 row.workers, row.cold_rps, row.warm_rps, row.p50, row.p95);
  }
  std::fprintf(f, "    \"orphan_recovery_ms\": %.3f,\n", orphan_recovery_ms);
  std::fprintf(f, "    \"orphans_readmitted\": %llu\n",
               static_cast<unsigned long long>(orphans_readmitted));
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"daemon_recovery\": {\"journal_replayed\": %llu, "
               "\"restart_to_first_result_ms\": %.3f, "
               "\"restart_to_converged_ms\": %.3f, "
               "\"duplicate_executions\": %llu, "
               "\"resubmit_executed\": %llu},\n",
               static_cast<unsigned long long>(journal_replayed),
               restart_first_result_ms, restart_converged_ms,
               static_cast<unsigned long long>(duplicate_executions),
               static_cast<unsigned long long>(resubmit_executed));
  std::fprintf(f,
               "  \"daemon\": {\"connections\": %llu, \"requests\": %llu, "
               "\"jobs\": %llu, \"admitted\": %llu, \"attached\": %llu, "
               "\"executed\": %llu, \"cache_hits\": %llu, "
               "\"completed_remote\": %llu, \"claimed\": %llu, "
               "\"leases_expired\": %llu, \"orphans_readmitted\": %llu}\n",
               static_cast<unsigned long long>(stats.connections),
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.jobs),
               static_cast<unsigned long long>(stats.admitted),
               static_cast<unsigned long long>(stats.attached),
               static_cast<unsigned long long>(stats.executed),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.completed_remote),
               static_cast<unsigned long long>(stats.claimed),
               static_cast<unsigned long long>(stats.leases_expired),
               static_cast<unsigned long long>(stats.orphans_readmitted));
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf(
      "sweep-serve bench: cold %.1f req/s, warm %.1f req/s, dedup %.2f "
      "-> %s\n",
      requestsPerSec(cold), requestsPerSec(warm), dedup_ratio,
      out_path.c_str());
  for (const ScalingRow& row : scaling) {
    std::printf(
        "sweep-serve bench: %u worker(s): cold %.1f req/s, warm %.1f req/s, "
        "p50 %.2fms, p95 %.2fms\n",
        row.workers, row.cold_rps, row.warm_rps, row.p50, row.p95);
  }
  std::printf("sweep-serve bench: orphan recovery %.1fms (%llu re-admitted)\n",
              orphan_recovery_ms,
              static_cast<unsigned long long>(orphans_readmitted));
  std::printf(
      "sweep-serve bench: daemon recovery: %llu replayed, first result "
      "%.1fms, converged %.1fms, %llu duplicate executions\n",
      static_cast<unsigned long long>(journal_replayed),
      restart_first_result_ms, restart_converged_ms,
      static_cast<unsigned long long>(duplicate_executions));
  std::printf("sweep-serve bench: daemon %s\n", stats.summary().c_str());
  std::printf("sweep-serve bench: elastic %s\n",
              elasticSummary(stats).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SweepCli cli = SweepCli::parse(argc, argv);

  std::string socket;
  std::string out_path;
  bool drain = false, stats = false, ping = false, bench = false;
  const std::vector<std::string> rest = std::move(cli.rest);
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& arg = rest[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(2);
      }
      return rest[++i];
    };
    if (arg == "--socket") {
      socket = value("--socket");
    } else if (arg.rfind("--socket=", 0) == 0) {
      socket = arg.substr(9);
    } else if (arg == "--cache-dir") {
      cli.options.cache_dir = value("--cache-dir");
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      cli.options.cache_dir = arg.substr(12);
    } else if (arg == "--out") {
      out_path = value("--out");
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--drain") {
      drain = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--ping") {
      ping = true;
    } else if (arg == "--bench") {
      bench = true;
    } else if (arg == "--help") {
      std::printf(
          "usage: sweep_serve [--socket PATH] [--cache-dir DIR] [--jobs N]\n"
          "                   [--retries N] [--timeout S] [--strict] "
          "[--no-cache]\n"
          "       sweep_serve --drain|--stats|--ping [--socket PATH]\n"
          "       sweep_serve --bench [--out FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (socket.empty() && !bench) socket = SweepDaemon::defaultSocketPath();

  try {
    if (drain) return drainDaemon(socket);
    if (stats) return printStats(socket);
    if (ping) return pingDaemon(socket);
    if (bench) return runBench(cli, socket, out_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  DaemonOptions options;
  options.socket_path = socket;
  options.sweep = cli.options;
  options.sweep.serve_socket.clear();  // the daemon executes locally
  return serveForever(options);
}
