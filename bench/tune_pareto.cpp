// Multi-objective autotune against both silicon references at once —
// the cross-platform generalization of the paper's §4 calibration loop
// (DESIGN.md §5d).
//
// One candidate lives in combinedPlatformSpace(): the Rocket memory knobs
// (namespaced "rocket/") steer a Rocket1-based model scored against the
// Banana Pi silicon reference, and the BOOM core+memory knobs ("boom/")
// steer a MilkVSim-based model scored against the MILK-V reference. The
// ParetoTuner fills an archive of nondominated (BananaPi error, MilkV
// error) trade-offs; the run passes when at least one front member
// dominates-or-matches BOTH of the paper's hand-built models (BananaPiSim
// and MilkVSim) — i.e. the automated cross-platform search is at least as
// close to silicon on each side as the per-chip hand tuning. Exit status
// reports that comparison (0 = pass), so the binary doubles as a
// regression check.
//
//   $ ./tune_pareto [--jobs N] [--no-cache] [--csv] [--budget N]
//                   [--seed N] [--scale F] [--cap N] [--checkpoint FILE]
//
// With --checkpoint, an interrupted run resumes bit-identically (schema v2
// checkpoints persist the error vectors and the archive).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "tune/pareto.h"

namespace {

using namespace bridge;

struct ParetoCliArgs {
  ParetoOptions tune;
  double scale = 0.15;
};

[[noreturn]] void usageError(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  std::exit(2);
}

long positiveIntOr(const std::string& flag, const std::string& text) {
  const std::optional<long> n = parsePositiveInt(text);
  if (!n) {
    usageError("invalid " + flag + " value '" + text +
               "' (expected an integer in [1, 1000000])");
  }
  return *n;
}

ParetoCliArgs parseParetoArgs(const std::vector<std::string>& rest) {
  ParetoCliArgs out;
  out.tune.budget = 300;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& arg = rest[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= rest.size()) usageError(arg + " requires a value");
      return rest[++i];
    };
    if (arg == "--budget") {
      out.tune.budget = static_cast<std::size_t>(positiveIntOr(arg, value()));
    } else if (arg == "--seed") {
      out.tune.seed = static_cast<std::uint64_t>(positiveIntOr(arg, value()));
    } else if (arg == "--cap") {
      out.tune.archive_cap =
          static_cast<std::size_t>(positiveIntOr(arg, value()));
    } else if (arg == "--scale") {
      const std::string& text = value();
      char* end = nullptr;
      out.scale = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0' || out.scale <= 0.0) {
        usageError("invalid --scale value '" + text + "'");
      }
    } else if (arg == "--checkpoint") {
      out.tune.checkpoint = value();
    } else {
      usageError("unknown argument: " + arg);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bridge;
  const SweepCli cli = SweepCli::parse(argc, argv);
  ParetoCliArgs args = parseParetoArgs(cli.rest);

  const ParamSpace space = combinedPlatformSpace();
  BiPlatformOptions bopts;
  bopts.scale = args.scale;
  BiPlatformObjective objective(bopts, cli.options);

  const ParamPoint start = combinedStartPoint(
      space, makePlatform(bopts.rocket_model, 1), makePlatform(bopts.boom_model, 1));

  std::printf("Pareto tune: (%s vs %s, %s vs %s) | budget=%zu scale=%.2f "
              "cap=%zu\n",
              std::string(platformName(bopts.rocket_model)).c_str(),
              std::string(platformName(bopts.rocket_reference)).c_str(),
              std::string(platformName(bopts.boom_model)).c_str(),
              std::string(platformName(bopts.boom_reference)).c_str(),
              args.tune.budget, args.scale, args.tune.archive_cap);
  std::printf("space: %zu dims, %zu points\n", space.dims(),
              space.cardinality());
  std::printf("start: %s\n\n", space.pointKey(start).c_str());

  if (cli.csv) {
    std::printf("eval,err_bananapi,err_milkv,entered,candidate\n");
  }
  args.tune.on_eval = [&](std::size_t index, const ParetoEntry& eval,
                          bool entered, bool fresh) {
    if (cli.csv) {
      std::printf("%zu,%.6f,%.6f,%d,\"%s\"\n", index, eval.errors[0],
                  eval.errors[1], entered ? 1 : 0,
                  space.pointKey(eval.point).c_str());
    } else if (entered) {
      std::printf("  eval %3zu%s  (%.4f, %.4f)  -> archive\n", index,
                  fresh ? "" : " (replayed)", eval.errors[0], eval.errors[1]);
    }
  };

  // Bad flags and stale/corrupt --checkpoint files throw; both are user
  // input, so report them as CLI errors rather than aborting.
  ParetoResult result;
  try {
    ParetoTuner tuner(space, &objective, args.tune);
    result = tuner.run(start);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("\n%zu evaluations (%zu fresh), stop: %s\n", result.evaluations,
              result.objective_calls, result.stop_reason.c_str());

  // The two hand-built per-chip models set the bar the front must clear.
  const double hand_bpi =
      objective.evaluateSideOn(0, PlatformId::kBananaPiSim, {}).error;
  const double hand_mlk =
      objective.evaluateSideOn(1, PlatformId::kMilkVSim, {}).error;

  std::printf("\nPareto front (%zu nondominated points):\n",
              result.front.size());
  std::printf("  %-10s %-10s  point\n", "BananaPi", "MilkV");
  const ParetoEntry* winner = nullptr;
  for (const ParetoEntry& e : result.front) {
    const bool beats_both =
        e.errors[0] <= hand_bpi + 1e-12 && e.errors[1] <= hand_mlk + 1e-12;
    if (beats_both && winner == nullptr) winner = &e;
    std::printf("  %-10.4f %-10.4f  %s%s\n", e.errors[0], e.errors[1],
                space.pointKey(e.point).c_str(),
                beats_both ? "   <- dominates both hand-built" : "");
  }

  std::printf("\nhand-built: BananaPiSim=%.4f  MilkVSim=%.4f\n", hand_bpi,
              hand_mlk);
  if (winner != nullptr) {
    std::printf("PASS: front point (%.4f, %.4f) dominates both hand-built "
                "models\n",
                winner->errors[0], winner->errors[1]);
    std::printf("winning overrides:\n%s",
                space.overrides(winner->point).toText().c_str());
    return 0;
  }
  std::printf("FAIL: no front point dominates both hand-built models\n");
  return 1;
}
