// Ablation (paper §4): the Rocket1 -> Rocket2 -> BananaPiSim ladder —
// L2 banks 1 -> 4, then system bus 64 -> 128 bits — measured on the
// cache/memory MicroBench categories that motivated each step.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"

int main() {
  using namespace bridge;
  const std::vector<std::string> kernels = {"ML2_BW_ld", "ML2_BW_st",
                                            "STL2", "MIM", "MM"};
  const PlatformId ladder[] = {PlatformId::kRocket1, PlatformId::kRocket2,
                               PlatformId::kBananaPiSim};

  std::printf("Ablation: L2 banks and bus width (Rocket ladder), ms\n");
  std::printf("%-16s", "kernel");
  for (const PlatformId p : ladder) {
    std::printf("%16s", std::string(platformName(p)).c_str());
  }
  std::printf("\n");
  for (const std::string& k : kernels) {
    std::printf("%-16s", k.c_str());
    for (const PlatformId p : ladder) {
      const RunResult r = runMicrobench(p, k, /*scale=*/0.3);
      std::printf("%16.3f", r.seconds * 1e3);
    }
    std::printf("\n");
  }
  std::printf("\n(Rocket2 adds 4 L2 banks; BananaPiSim widens the bus to "
              "128 bits.)\n");
  return 0;
}
