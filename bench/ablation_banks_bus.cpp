// Ablation (paper §4): the Rocket1 -> Rocket2 -> BananaPiSim ladder —
// L2 banks 1 -> 4, then system bus 64 -> 128 bits — measured on the
// cache/memory MicroBench categories that motivated each step.
//
//   $ ./ablation_banks_bus [--jobs N] [--no-cache]
#include <cstdio>
#include <string>
#include <vector>

#include "sweep/sweep.h"

int main(int argc, char** argv) {
  using namespace bridge;
  const SweepCli cli = SweepCli::parse(argc, argv);
  const std::vector<std::string> kernels = {"ML2_BW_ld", "ML2_BW_st",
                                            "STL2", "MIM", "MM"};
  const PlatformId ladder[] = {PlatformId::kRocket1, PlatformId::kRocket2,
                               PlatformId::kBananaPiSim};

  // The full (kernel x ladder) grid as one sweep, row-major.
  std::vector<JobSpec> jobs;
  for (const std::string& k : kernels) {
    for (const PlatformId p : ladder) {
      jobs.push_back(microbenchJob(p, k, /*scale=*/0.3));
    }
  }
  const std::vector<SweepResult> results = SweepEngine(cli.options).run(jobs);

  std::printf("Ablation: L2 banks and bus width (Rocket ladder), ms\n");
  std::printf("%-16s", "kernel");
  for (const PlatformId p : ladder) {
    std::printf("%16s", std::string(platformName(p)).c_str());
  }
  std::printf("\n");
  std::size_t j = 0;
  for (const std::string& k : kernels) {
    std::printf("%-16s", k.c_str());
    for (std::size_t i = 0; i < std::size(ladder); ++i) {
      std::printf("%16.3f", results[j++].result.seconds * 1e3);
    }
    std::printf("\n");
  }
  std::printf("\n(Rocket2 adds 4 L2 banks; BananaPiSim widens the bus to "
              "128 bits.)\n");
  return 0;
}
