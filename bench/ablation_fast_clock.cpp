// Ablation (paper §5.1): doubling the modeled clock to 3.2 GHz to mimic
// the K1's dual issue. Compute/control/cache categories improve; memory
// kernels get relatively worse because DRAM nanoseconds become twice as
// many core cycles. This bench prints per-category geometric means of the
// relative speedup vs the Banana Pi hardware model.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "harness/experiment.h"
#include "workloads/microbench.h"

int main() {
  using namespace bridge;
  std::map<MicrobenchCategory, std::vector<double>> base, fast;
  for (const MicrobenchInfo& info : microbenchCatalog()) {
    if (info.excluded) continue;
    const RunResult hw =
        runMicrobench(PlatformId::kBananaPiHw, info.name, 0.15);
    const RunResult b =
        runMicrobench(PlatformId::kBananaPiSim, info.name, 0.15);
    const RunResult f =
        runMicrobench(PlatformId::kFastBananaPiSim, info.name, 0.15);
    base[info.category].push_back(hw.seconds / b.seconds);
    fast[info.category].push_back(hw.seconds / f.seconds);
  }

  auto geomean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (const double x : v) s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
  };

  std::printf("Ablation: 2x clock (Fast Banana Pi model), relative "
              "speedup vs hardware by category\n");
  std::printf("%-14s %14s %14s\n", "category", "1.6 GHz", "3.2 GHz");
  for (const auto& [cat, values] : base) {
    std::printf("%-14s %14.3f %14.3f\n",
                std::string(categoryName(cat)).c_str(), geomean(values),
                geomean(fast[cat]));
  }
  return 0;
}
