// Ablation (paper §5.1): doubling the modeled clock to 3.2 GHz to mimic
// the K1's dual issue. Compute/control/cache categories improve; memory
// kernels get relatively worse because DRAM nanoseconds become twice as
// many core cycles. This bench prints per-category geometric means of the
// relative speedup vs the Banana Pi hardware model.
//
//   $ ./ablation_fast_clock [--jobs N] [--no-cache]
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "sweep/sweep.h"
#include "workloads/microbench.h"

int main(int argc, char** argv) {
  using namespace bridge;
  const SweepCli cli = SweepCli::parse(argc, argv);

  // Three runs per kernel (hardware, 1.6 GHz model, 3.2 GHz model).
  const PlatformId platforms[] = {PlatformId::kBananaPiHw,
                                  PlatformId::kBananaPiSim,
                                  PlatformId::kFastBananaPiSim};
  std::vector<JobSpec> jobs;
  std::vector<MicrobenchCategory> categories;
  for (const MicrobenchInfo& info : microbenchCatalog()) {
    if (info.excluded) continue;
    categories.push_back(info.category);
    for (const PlatformId p : platforms) {
      jobs.push_back(microbenchJob(p, info.name, /*scale=*/0.15));
    }
  }
  const std::vector<SweepResult> results = SweepEngine(cli.options).run(jobs);

  std::map<MicrobenchCategory, std::vector<double>> base, fast;
  for (std::size_t i = 0; i < categories.size(); ++i) {
    const double hw = results[3 * i].result.seconds;
    base[categories[i]].push_back(hw / results[3 * i + 1].result.seconds);
    fast[categories[i]].push_back(hw / results[3 * i + 2].result.seconds);
  }

  auto geomean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (const double x : v) s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
  };

  std::printf("Ablation: 2x clock (Fast Banana Pi model), relative "
              "speedup vs hardware by category\n");
  std::printf("%-14s %14s %14s\n", "category", "1.6 GHz", "3.2 GHz");
  for (const auto& [cat, values] : base) {
    std::printf("%-14s %14.3f %14.3f\n",
                std::string(categoryName(cat)).c_str(), geomean(values),
                geomean(fast[cat]));
  }
  return 0;
}
