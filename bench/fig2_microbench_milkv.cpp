// Regenerates Figure 2: MicroBench relative performance of the Small /
// Medium / Large BOOM configurations and the tuned MILK-V simulation
// model vs the MILK-V hardware reference.
//
//   $ ./fig2_microbench_milkv [--csv] [--jobs N] [--no-cache]
#include <iostream>

#include "harness/figures.h"

int main(int argc, char** argv) {
  const bridge::SweepCli cli = bridge::SweepCli::parse(argc, argv);
  const bridge::Figure fig = bridge::computeFig2(/*scale=*/0.3, cli.options);
  if (cli.csv) {
    bridge::renderCsv(std::cout, fig);
  } else {
    bridge::renderFigure(std::cout, fig);
  }
  return 0;
}
