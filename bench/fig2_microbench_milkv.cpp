// Regenerates Figure 2: MicroBench relative performance of the Small /
// Medium / Large BOOM configurations and the tuned MILK-V simulation
// model vs the MILK-V hardware reference.
#include <iostream>
#include <string_view>

#include "harness/figures.h"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string_view(argv[1]) == "--csv";
  const bridge::Figure fig = bridge::computeFig2(/*scale=*/0.3);
  if (csv) {
    bridge::renderCsv(std::cout, fig);
  } else {
    bridge::renderFigure(std::cout, fig);
  }
  return 0;
}
