// Regenerates Figure 5: UME relative speedup (FireSim model vs hardware)
// at 1/2/4 MPI ranks for both platform pairs, plus the raw runtimes next
// to the paper's reported numbers.
//
//   $ ./fig5_ume [--jobs N] [--no-cache]
#include <cstdio>
#include <iostream>

#include "harness/figures.h"
#include "harness/reference_data.h"

int main(int argc, char** argv) {
  using namespace bridge;
  const SweepCli cli = SweepCli::parse(argc, argv);
  renderFigure(std::cout, computeFig5(/*scale=*/1.0, cli.options));

  std::printf("\nPaper-reported relative speedups (from the raw runtimes "
              "in §5.3):\n");
  for (const PaperRuntime& r : paperRuntimes()) {
    if (r.workload != "ume") continue;
    std::printf("  %-9s %d ranks: %.3f (hw %.3fs / sim %.3fs)\n",
                std::string(r.pair).c_str(), r.ranks, r.relativeSpeedup(),
                r.hw_seconds, r.sim_seconds);
  }
  return 0;
}
