// Regenerates Table 4: FireSim model parameters.
#include <iostream>

#include "harness/figures.h"

int main() {
  bridge::renderTable4(std::cout);
  return 0;
}
