// cache-fsck: verify (and optionally repair) a sweep result cache.
//
// Usage:
//   cache_fsck [--repair] [--quiet] [dir]
//
// Walks the sharded cache tree (default: $BRIDGE_SWEEP_CACHE or
// build/sweep-cache) — every fingerprint-prefix shard directory plus any
// legacy flat entries at the root — verifying the version+checksum footer
// and the JSON body of each entry. Stale temp files from interrupted
// writers are reported too, as are shard lock files left behind by a
// killed daemon (inert litter: flock(2) locks die with their holder, so
// an *unheld* lock file is never blocking anyone — but --repair sweeps
// them up). With --repair, corrupt entries and stale temps are deleted —
// they simply re-simulate on next use, so repair never loses information
// that was trustworthy in the first place.
//
// When the tree carries a write-ahead admission journal (<dir>/journal,
// DESIGN §5k) it is audited too: each seg-*.wal segment's crc+len-sealed
// records are verified, torn tails from a mid-append crash are reported
// (--repair truncates them back to the last whole record — exactly what a
// restarting daemon's replay would skip anyway), and compacted litter
// (sealed segments with no live admits, stale rotation temps) is swept.
// Run it on a journal no daemon has open, like the cache itself.
//
// Exit status: 0 when the cache is clean (or every defect was repaired),
// 1 when defects remain on disk, 2 on usage errors. Lock and compaction
// litter alone never fails the audit.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "serve/journal.h"
#include "sweep/result_cache.h"

int main(int argc, char** argv) {
  bool repair = false;
  bool quiet = false;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--repair") == 0) {
      repair = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("usage: cache_fsck [--repair] [--quiet] [dir]\n");
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg);
      return 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      std::fprintf(stderr, "error: more than one cache directory given\n");
      return 2;
    }
  }

  const bridge::ResultCache cache(dir);
  const bridge::CacheFsck report = cache.fsck(repair);

  if (!quiet) {
    for (const std::string& f : report.bad_files) {
      std::printf("%s %s\n", repair ? "removed" : "bad", f.c_str());
    }
    for (const bridge::ShardFsck& shard : report.shards) {
      std::printf(
          "shard %-2s: %zu scanned, %zu ok, %zu corrupt, %zu stale tmp, "
          "%zu stale lock\n",
          shard.shard.c_str(), shard.scanned, shard.ok, shard.corrupt,
          shard.stale_tmp, shard.stale_lock);
    }
  }
  std::printf(
      "cache-fsck %s: %zu shards, %zu scanned, %zu ok, %zu corrupt, "
      "%zu stale tmp, %zu stale lock, %zu removed\n",
      cache.dir().c_str(), report.shards.size(), report.scanned, report.ok,
      report.corrupt, report.stale_tmp, report.stale_lock, report.removed);

  // The admission journal lives inside the cache tree by default; audit it
  // whenever it exists (a journal-less cache stays a cache-only audit).
  bool journal_dirty = false;
  const std::string journal_dir = cache.dir() + "/journal";
  std::error_code ec;
  if (std::filesystem::is_directory(journal_dir, ec)) {
    const bridge::serve::JournalFsck jreport =
        bridge::serve::AdmissionJournal::fsck(journal_dir, repair);
    if (!quiet) {
      for (const std::string& f : jreport.bad_files) {
        std::printf("%s %s\n", repair ? "repaired" : "bad", f.c_str());
      }
      for (const bridge::serve::JournalSegmentFsck& seg : jreport.segs) {
        std::string tail;
        if (seg.torn) {
          tail = ", torn tail (" + std::to_string(seg.torn_bytes) + " bytes)";
        }
        std::printf(
            "journal %s%s: %zu records (%zu admit, %zu done, %zu live)%s\n",
            seg.file.c_str(), seg.active ? " (active)" : "", seg.records,
            seg.admits, seg.dones, seg.live, tail.c_str());
      }
    }
    std::printf(
        "journal-fsck %s: %zu segments, %zu records, %zu live, %zu torn, "
        "%zu compacted, %zu stale tmp, %zu removed\n",
        journal_dir.c_str(), jreport.segments, jreport.records, jreport.live,
        jreport.torn, jreport.compacted, jreport.stale_tmp, jreport.removed);
    journal_dirty = !jreport.clean();
  }

  if (report.clean() && !journal_dirty) return 0;
  return repair ? 0 : 1;  // repaired defects are gone; unrepaired remain
}
