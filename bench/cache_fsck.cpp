// cache-fsck: verify (and optionally repair) a sweep result cache.
//
// Usage:
//   cache_fsck [--repair] [--quiet] [dir]
//
// Scans every entry in the cache directory (default: $BRIDGE_SWEEP_CACHE or
// build/sweep-cache), verifying the version+checksum footer and the JSON
// body of each. Stale temp files from interrupted writers are reported too.
// With --repair, corrupt entries and stale temps are deleted — they simply
// re-simulate on next use, so repair never loses information that was
// trustworthy in the first place.
//
// Exit status: 0 when the cache is clean (or every defect was repaired),
// 1 when defects remain on disk, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <string>

#include "sweep/result_cache.h"

int main(int argc, char** argv) {
  bool repair = false;
  bool quiet = false;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--repair") == 0) {
      repair = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("usage: cache_fsck [--repair] [--quiet] [dir]\n");
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg);
      return 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      std::fprintf(stderr, "error: more than one cache directory given\n");
      return 2;
    }
  }

  const bridge::ResultCache cache(dir);
  const bridge::CacheFsck report = cache.fsck(repair);

  if (!quiet) {
    for (const std::string& f : report.bad_files) {
      std::printf("%s %s\n", repair ? "removed" : "bad", f.c_str());
    }
  }
  std::printf(
      "cache-fsck %s: %zu scanned, %zu ok, %zu corrupt, %zu stale tmp, "
      "%zu removed\n",
      cache.dir().c_str(), report.scanned, report.ok, report.corrupt,
      report.stale_tmp, report.removed);

  if (report.clean()) return 0;
  return repair ? 0 : 1;  // repaired defects are gone; unrepaired remain
}
