// cache-fsck: verify (and optionally repair) a sweep result cache.
//
// Usage:
//   cache_fsck [--repair] [--quiet] [dir]
//
// Walks the sharded cache tree (default: $BRIDGE_SWEEP_CACHE or
// build/sweep-cache) — every fingerprint-prefix shard directory plus any
// legacy flat entries at the root — verifying the version+checksum footer
// and the JSON body of each entry. Stale temp files from interrupted
// writers are reported too, as are shard lock files left behind by a
// killed daemon (inert litter: flock(2) locks die with their holder, so
// an *unheld* lock file is never blocking anyone — but --repair sweeps
// them up). With --repair, corrupt entries and stale temps are deleted —
// they simply re-simulate on next use, so repair never loses information
// that was trustworthy in the first place.
//
// Exit status: 0 when the cache is clean (or every defect was repaired),
// 1 when defects remain on disk, 2 on usage errors. Lock litter alone
// never fails the audit.
#include <cstdio>
#include <cstring>
#include <string>

#include "sweep/result_cache.h"

int main(int argc, char** argv) {
  bool repair = false;
  bool quiet = false;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--repair") == 0) {
      repair = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("usage: cache_fsck [--repair] [--quiet] [dir]\n");
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg);
      return 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      std::fprintf(stderr, "error: more than one cache directory given\n");
      return 2;
    }
  }

  const bridge::ResultCache cache(dir);
  const bridge::CacheFsck report = cache.fsck(repair);

  if (!quiet) {
    for (const std::string& f : report.bad_files) {
      std::printf("%s %s\n", repair ? "removed" : "bad", f.c_str());
    }
    for (const bridge::ShardFsck& shard : report.shards) {
      std::printf(
          "shard %-2s: %zu scanned, %zu ok, %zu corrupt, %zu stale tmp, "
          "%zu stale lock\n",
          shard.shard.c_str(), shard.scanned, shard.ok, shard.corrupt,
          shard.stale_tmp, shard.stale_lock);
    }
  }
  std::printf(
      "cache-fsck %s: %zu shards, %zu scanned, %zu ok, %zu corrupt, "
      "%zu stale tmp, %zu stale lock, %zu removed\n",
      cache.dir().c_str(), report.shards.size(), report.scanned, report.ok,
      report.corrupt, report.stale_tmp, report.stale_lock, report.removed);

  if (report.clean()) return 0;
  return repair ? 0 : 1;  // repaired defects are gone; unrepaired remain
}
