// Ablation for the paper's §5.2.2 / §6 prescription: closing the remaining
// MILK-V gap "would require ... improving core (larger ld/st queue, larger
// reorder buffer size etc.) as well as improving memory subsystem's
// capability (higher cache MSHRs, larger queue for DRAM etc.)". This bench
// applies exactly those knobs to the MILK-V simulation model and reports
// how far each moves the memory-sensitive NPB benchmarks toward hardware.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "mpi/mpi.h"
#include "soc/soc.h"
#include "workloads/npb.h"

namespace {

using namespace bridge;

double seconds(const SocConfig& cfg, NpbBenchmark b) {
  Soc soc(cfg);
  NpbConfig nc;
  const MpiRunResult r = runMpiProgram(&soc, 1, [&](int rank, int n) {
    return makeNpbRank(b, rank, n, nc);
  });
  return soc.seconds(r.cycles);
}

}  // namespace

int main() {
  using namespace bridge;
  const NpbBenchmark benches[] = {NpbBenchmark::kCG, NpbBenchmark::kIS,
                                  NpbBenchmark::kMG};

  // Hardware reference times.
  double hw[3];
  for (int i = 0; i < 3; ++i) {
    hw[i] = seconds(makePlatform(PlatformId::kMilkVHw, 4), benches[i]);
  }

  struct Variant {
    const char* name;
    SocConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"MilkVSim (baseline)",
                      makePlatform(PlatformId::kMilkVSim, 4)});
  {
    SocConfig c = makePlatform(PlatformId::kMilkVSim, 4);
    c.ooo.ldq = 48;
    c.ooo.stq = 48;
    variants.push_back({"+2x ld/st queues", c});
  }
  {
    SocConfig c = makePlatform(PlatformId::kMilkVSim, 4);
    c.ooo.rob = 192;
    variants.push_back({"+2x reorder buffer", c});
  }
  {
    SocConfig c = makePlatform(PlatformId::kMilkVSim, 4);
    c.ooo.int_iq = 64;
    c.ooo.mem_iq = 32;
    c.ooo.fp_iq = 48;
    variants.push_back({"+2x issue queues", c});
  }
  {
    SocConfig c = makePlatform(PlatformId::kMilkVSim, 4);
    c.mem.l1d.mshrs = 16;
    c.mem.l2.mshrs = 32;
    variants.push_back({"+4x cache MSHRs", c});
  }
  {
    SocConfig c = makePlatform(PlatformId::kMilkVSim, 4);
    c.mem.dram.read_queue_depth = 128;
    c.mem.dram.write_queue_depth = 64;
    variants.push_back({"+2x DRAM queues", c});
  }
  {
    SocConfig c = makePlatform(PlatformId::kMilkVSim, 4);
    c.ooo.ldq = 48;
    c.ooo.stq = 48;
    c.ooo.rob = 192;
    c.ooo.int_iq = 64;
    c.ooo.mem_iq = 32;
    c.ooo.fp_iq = 48;
    c.mem.l1d.mshrs = 16;
    c.mem.l2.mshrs = 32;
    c.mem.dram.read_queue_depth = 128;
    variants.push_back({"all of the above", c});
  }

  std::printf("Ablation: the paper's proposed tuning steps, relative "
              "speedup vs MILK-V hardware (1.0 = parity)\n");
  std::printf("%-24s %10s %10s %10s\n", "variant", "CG", "IS", "MG");
  for (const Variant& v : variants) {
    std::printf("%-24s", v.name);
    for (int i = 0; i < 3; ++i) {
      std::printf("%10.3f", hw[i] / seconds(v.cfg, benches[i]));
    }
    std::printf("\n");
  }
  return 0;
}
