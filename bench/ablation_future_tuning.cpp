// Ablation for the paper's §5.2.2 / §6 prescription: closing the remaining
// MILK-V gap "would require ... improving core (larger ld/st queue, larger
// reorder buffer size etc.) as well as improving memory subsystem's
// capability (higher cache MSHRs, larger queue for DRAM etc.)". This bench
// applies exactly those knobs to the MILK-V simulation model and reports
// how far each moves the memory-sensitive NPB benchmarks toward hardware.
//
//   $ ./ablation_future_tuning [--jobs N] [--no-cache]
#include <cstdio>
#include <vector>

#include "sweep/sweep.h"

namespace {

using namespace bridge;

struct Variant {
  const char* name;
  Config overrides;
};

Config tuned(std::initializer_list<std::pair<const char*, const char*>> kv) {
  Config c;
  for (const auto& [key, value] : kv) c.set(key, value);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bridge;
  const SweepCli cli = SweepCli::parse(argc, argv);
  const NpbBenchmark benches[] = {NpbBenchmark::kCG, NpbBenchmark::kIS,
                                  NpbBenchmark::kMG};

  std::vector<Variant> variants;
  variants.push_back({"MilkVSim (baseline)", {}});
  variants.push_back({"+2x ld/st queues",
                      tuned({{"ooo.ldq", "48"}, {"ooo.stq", "48"}})});
  variants.push_back({"+2x reorder buffer", tuned({{"ooo.rob", "192"}})});
  variants.push_back({"+2x issue queues",
                      tuned({{"ooo.int_iq", "64"},
                             {"ooo.mem_iq", "32"},
                             {"ooo.fp_iq", "48"}})});
  variants.push_back({"+4x cache MSHRs",
                      tuned({{"l1d.mshrs", "16"}, {"l2.mshrs", "32"}})});
  variants.push_back({"+2x DRAM queues",
                      tuned({{"dram.read_queue_depth", "128"},
                             {"dram.write_queue_depth", "64"}})});
  variants.push_back({"all of the above",
                      tuned({{"ooo.ldq", "48"},
                             {"ooo.stq", "48"},
                             {"ooo.rob", "192"},
                             {"ooo.int_iq", "64"},
                             {"ooo.mem_iq", "32"},
                             {"ooo.fp_iq", "48"},
                             {"l1d.mshrs", "16"},
                             {"l2.mshrs", "32"},
                             {"dram.read_queue_depth", "128"}})});

  // Hardware references first, then (variant x bench), all as one sweep.
  std::vector<JobSpec> jobs;
  for (const NpbBenchmark b : benches) {
    jobs.push_back(npbJob(PlatformId::kMilkVHw, b, /*ranks=*/1));
  }
  for (const Variant& v : variants) {
    for (const NpbBenchmark b : benches) {
      JobSpec job = npbJob(PlatformId::kMilkVSim, b, /*ranks=*/1);
      job.overrides = v.overrides;
      job.label = std::string(v.name) + "/" + std::string(npbName(b));
      jobs.push_back(job);
    }
  }
  const std::vector<SweepResult> results = SweepEngine(cli.options).run(jobs);

  std::printf("Ablation: the paper's proposed tuning steps, relative "
              "speedup vs MILK-V hardware (1.0 = parity)\n");
  std::printf("%-24s %10s %10s %10s\n", "variant", "CG", "IS", "MG");
  std::size_t j = 3;
  for (const Variant& v : variants) {
    std::printf("%-24s", v.name);
    for (int i = 0; i < 3; ++i) {
      std::printf("%10.3f",
                  results[i].result.seconds / results[j++].result.seconds);
    }
    std::printf("\n");
  }
  return 0;
}
