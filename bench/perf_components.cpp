// Simulator-component throughput benchmarks (google-benchmark): how fast
// the timing models themselves run on the host. These guard against
// regressions that would make full-figure sweeps impractically slow.
#include <benchmark/benchmark.h>

#include "branch/composite.h"
#include "branch/tage.h"
#include "cache/hierarchy.h"
#include "core/inorder.h"
#include "core/ooo.h"
#include "dram/controller.h"
#include "platforms/platforms.h"
#include "sim/rng.h"
#include "soc/soc.h"
#include "trace/kernel.h"
#include "workloads/microbench.h"

namespace {

using namespace bridge;

void BM_TagePredict(benchmark::State& state) {
  TagePredictor tage;
  Xorshift64Star rng(1);
  Addr pc = 0x400;
  for (auto _ : state) {
    const bool taken = rng.nextBool(0.6);
    benchmark::DoNotOptimize(tage.predict(pc));
    tage.update(pc, taken);
    pc = 0x400 + (rng.next() & 0xFF) * 4;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagePredict);

void BM_CacheAccess(benchmark::State& state) {
  SetAssocCache cache({static_cast<unsigned>(state.range(0)), 8,
                       ReplacementPolicy::kLru});
  Xorshift64Star rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(rng.nextBelow(1 << 22), false).hit);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DramRead(benchmark::State& state) {
  DramController dram(ddr3_2000_quadrank(), 2.0);
  Xorshift64Star rng(3);
  Cycle t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dram.read(rng.nextBelow(1 << 24) * 64, t));
    t += 4;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramRead);

void BM_HierarchyLoad(benchmark::State& state) {
  StatRegistry stats;
  SocConfig cfg = makePlatform(PlatformId::kMilkVSim, 1);
  MemSysParams mp = cfg.mem;
  mp.freq_ghz = cfg.freq_ghz;
  MemoryHierarchy mem(1, mp, &stats);
  Xorshift64Star rng(4);
  Cycle t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mem.load(0, 0x400, rng.nextBelow(1 << 22), t).complete);
    t += 2;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyLoad);

void BM_InOrderCoreUopThroughput(benchmark::State& state) {
  Soc soc(makePlatform(PlatformId::kBananaPiSim, 1));
  MicroOp op;
  op.cls = OpClass::kIntAlu;
  op.dst = intReg(5);
  op.src0 = intReg(6);
  op.pc = 0x400;
  for (auto _ : state) {
    soc.core(0).consume(op);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InOrderCoreUopThroughput);

void BM_OooCoreUopThroughput(benchmark::State& state) {
  Soc soc(makePlatform(PlatformId::kMilkVSim, 1));
  MicroOp op;
  op.cls = OpClass::kIntAlu;
  op.dst = intReg(5);
  op.src0 = intReg(6);
  op.pc = 0x400;
  for (auto _ : state) {
    soc.core(0).consume(op);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OooCoreUopThroughput);

void BM_MicrobenchTraceGeneration(benchmark::State& state) {
  auto trace = makeMicrobench("CCh", 100.0);  // effectively unbounded
  MicroOp op;
  for (auto _ : state) {
    if (!trace->next(&op)) {
      trace = makeMicrobench("CCh", 100.0);
      trace->next(&op);
    }
    benchmark::DoNotOptimize(op.pc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MicrobenchTraceGeneration);

void BM_EndToEndKernel(benchmark::State& state) {
  for (auto _ : state) {
    Soc soc(makePlatform(PlatformId::kBananaPiSim, 1));
    auto trace = makeMicrobench("ED1", 0.05);
    benchmark::DoNotOptimize(soc.runTrace(*trace));
  }
}
BENCHMARK(BM_EndToEndKernel)->Unit(benchmark::kMillisecond);

}  // namespace
