// Regenerates Figure 3: NPB relative speedup of the Rocket-family
// configurations vs the Banana Pi hardware reference, (a) single core and
// (b) four cores.
#include <iostream>
#include <string_view>

#include "harness/figures.h"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string_view(argv[1]) == "--csv";
  for (const int ranks : {1, 4}) {
    const bridge::Figure fig = bridge::computeFig3(ranks, 0.3);
    if (csv) {
      bridge::renderCsv(std::cout, fig);
    } else {
      bridge::renderFigure(std::cout, fig);
      std::cout << '\n';
    }
  }
  return 0;
}
