// Regenerates Figure 3: NPB relative speedup of the Rocket-family
// configurations vs the Banana Pi hardware reference, (a) single core and
// (b) four cores.
//
//   $ ./fig3_npb_rocket [--csv] [--jobs N] [--no-cache]
#include <iostream>

#include "harness/figures.h"

int main(int argc, char** argv) {
  const bridge::SweepCli cli = bridge::SweepCli::parse(argc, argv);
  for (const int ranks : {1, 4}) {
    const bridge::Figure fig = bridge::computeFig3(ranks, 0.3, cli.options);
    if (cli.csv) {
      bridge::renderCsv(std::cout, fig);
    } else {
      bridge::renderFigure(std::cout, fig);
      std::cout << '\n';
    }
  }
  return 0;
}
