file(REMOVE_RECURSE
  "CMakeFiles/bridge_sweep_tests.dir/test_result_cache.cpp.o"
  "CMakeFiles/bridge_sweep_tests.dir/test_result_cache.cpp.o.d"
  "CMakeFiles/bridge_sweep_tests.dir/test_sweep_determinism.cpp.o"
  "CMakeFiles/bridge_sweep_tests.dir/test_sweep_determinism.cpp.o.d"
  "CMakeFiles/bridge_sweep_tests.dir/test_sweep_engine.cpp.o"
  "CMakeFiles/bridge_sweep_tests.dir/test_sweep_engine.cpp.o.d"
  "CMakeFiles/bridge_sweep_tests.dir/test_thread_pool.cpp.o"
  "CMakeFiles/bridge_sweep_tests.dir/test_thread_pool.cpp.o.d"
  "bridge_sweep_tests"
  "bridge_sweep_tests.pdb"
  "bridge_sweep_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridge_sweep_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
