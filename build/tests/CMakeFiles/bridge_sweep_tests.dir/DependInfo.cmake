
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_result_cache.cpp" "tests/CMakeFiles/bridge_sweep_tests.dir/test_result_cache.cpp.o" "gcc" "tests/CMakeFiles/bridge_sweep_tests.dir/test_result_cache.cpp.o.d"
  "/root/repo/tests/test_sweep_determinism.cpp" "tests/CMakeFiles/bridge_sweep_tests.dir/test_sweep_determinism.cpp.o" "gcc" "tests/CMakeFiles/bridge_sweep_tests.dir/test_sweep_determinism.cpp.o.d"
  "/root/repo/tests/test_sweep_engine.cpp" "tests/CMakeFiles/bridge_sweep_tests.dir/test_sweep_engine.cpp.o" "gcc" "tests/CMakeFiles/bridge_sweep_tests.dir/test_sweep_engine.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/bridge_sweep_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/bridge_sweep_tests.dir/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bridge.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
