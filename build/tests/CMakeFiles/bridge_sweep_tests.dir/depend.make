# Empty dependencies file for bridge_sweep_tests.
# This may be replaced when dependencies are built.
