
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_gen.cpp" "tests/CMakeFiles/bridge_tests.dir/test_address_gen.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_address_gen.cpp.o.d"
  "/root/repo/tests/test_bimodal.cpp" "tests/CMakeFiles/bridge_tests.dir/test_bimodal.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_bimodal.cpp.o.d"
  "/root/repo/tests/test_branch_gen.cpp" "tests/CMakeFiles/bridge_tests.dir/test_branch_gen.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_branch_gen.cpp.o.d"
  "/root/repo/tests/test_btb.cpp" "tests/CMakeFiles/bridge_tests.dir/test_btb.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_btb.cpp.o.d"
  "/root/repo/tests/test_bus.cpp" "tests/CMakeFiles/bridge_tests.dir/test_bus.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_bus.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/bridge_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_calendar.cpp" "tests/CMakeFiles/bridge_tests.dir/test_calendar.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_calendar.cpp.o.d"
  "/root/repo/tests/test_calibration.cpp" "tests/CMakeFiles/bridge_tests.dir/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_calibration.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/bridge_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_collectives.cpp" "tests/CMakeFiles/bridge_tests.dir/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_collectives.cpp.o.d"
  "/root/repo/tests/test_composite_frontend.cpp" "tests/CMakeFiles/bridge_tests.dir/test_composite_frontend.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_composite_frontend.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/bridge_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_dram.cpp" "tests/CMakeFiles/bridge_tests.dir/test_dram.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_dram.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/bridge_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_figures.cpp" "tests/CMakeFiles/bridge_tests.dir/test_figures.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_figures.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/bridge_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_gshare.cpp" "tests/CMakeFiles/bridge_tests.dir/test_gshare.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_gshare.cpp.o.d"
  "/root/repo/tests/test_hierarchy.cpp" "tests/CMakeFiles/bridge_tests.dir/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/test_inorder.cpp" "tests/CMakeFiles/bridge_tests.dir/test_inorder.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_inorder.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/bridge_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_kernel.cpp" "tests/CMakeFiles/bridge_tests.dir/test_kernel.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_kernel.cpp.o.d"
  "/root/repo/tests/test_lammps.cpp" "tests/CMakeFiles/bridge_tests.dir/test_lammps.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_lammps.cpp.o.d"
  "/root/repo/tests/test_llc.cpp" "tests/CMakeFiles/bridge_tests.dir/test_llc.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_llc.cpp.o.d"
  "/root/repo/tests/test_log.cpp" "tests/CMakeFiles/bridge_tests.dir/test_log.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_log.cpp.o.d"
  "/root/repo/tests/test_microbench.cpp" "tests/CMakeFiles/bridge_tests.dir/test_microbench.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_microbench.cpp.o.d"
  "/root/repo/tests/test_microbench_sweep.cpp" "tests/CMakeFiles/bridge_tests.dir/test_microbench_sweep.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_microbench_sweep.cpp.o.d"
  "/root/repo/tests/test_mpi.cpp" "tests/CMakeFiles/bridge_tests.dir/test_mpi.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_mpi.cpp.o.d"
  "/root/repo/tests/test_mpi_properties.cpp" "tests/CMakeFiles/bridge_tests.dir/test_mpi_properties.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_mpi_properties.cpp.o.d"
  "/root/repo/tests/test_mshr.cpp" "tests/CMakeFiles/bridge_tests.dir/test_mshr.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_mshr.cpp.o.d"
  "/root/repo/tests/test_npb.cpp" "tests/CMakeFiles/bridge_tests.dir/test_npb.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_npb.cpp.o.d"
  "/root/repo/tests/test_ooo.cpp" "tests/CMakeFiles/bridge_tests.dir/test_ooo.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_ooo.cpp.o.d"
  "/root/repo/tests/test_ooo_iq.cpp" "tests/CMakeFiles/bridge_tests.dir/test_ooo_iq.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_ooo_iq.cpp.o.d"
  "/root/repo/tests/test_platforms.cpp" "tests/CMakeFiles/bridge_tests.dir/test_platforms.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_platforms.cpp.o.d"
  "/root/repo/tests/test_predictor_workloads.cpp" "tests/CMakeFiles/bridge_tests.dir/test_predictor_workloads.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_predictor_workloads.cpp.o.d"
  "/root/repo/tests/test_prefetcher.cpp" "tests/CMakeFiles/bridge_tests.dir/test_prefetcher.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_prefetcher.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/bridge_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_ras.cpp" "tests/CMakeFiles/bridge_tests.dir/test_ras.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_ras.cpp.o.d"
  "/root/repo/tests/test_reference_data.cpp" "tests/CMakeFiles/bridge_tests.dir/test_reference_data.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_reference_data.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/bridge_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_soc.cpp" "tests/CMakeFiles/bridge_tests.dir/test_soc.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_soc.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/bridge_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_tage.cpp" "tests/CMakeFiles/bridge_tests.dir/test_tage.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_tage.cpp.o.d"
  "/root/repo/tests/test_tlb.cpp" "tests/CMakeFiles/bridge_tests.dir/test_tlb.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_tlb.cpp.o.d"
  "/root/repo/tests/test_ume.cpp" "tests/CMakeFiles/bridge_tests.dir/test_ume.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_ume.cpp.o.d"
  "/root/repo/tests/test_uop.cpp" "tests/CMakeFiles/bridge_tests.dir/test_uop.cpp.o" "gcc" "tests/CMakeFiles/bridge_tests.dir/test_uop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bridge.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
