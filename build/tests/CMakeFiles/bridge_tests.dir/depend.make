# Empty dependencies file for bridge_tests.
# This may be replaced when dependencies are built.
