# Empty compiler generated dependencies file for bridge.
# This may be replaced when dependencies are built.
