
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/bimodal.cpp" "src/CMakeFiles/bridge.dir/branch/bimodal.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/branch/bimodal.cpp.o.d"
  "/root/repo/src/branch/btb.cpp" "src/CMakeFiles/bridge.dir/branch/btb.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/branch/btb.cpp.o.d"
  "/root/repo/src/branch/composite.cpp" "src/CMakeFiles/bridge.dir/branch/composite.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/branch/composite.cpp.o.d"
  "/root/repo/src/branch/gshare.cpp" "src/CMakeFiles/bridge.dir/branch/gshare.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/branch/gshare.cpp.o.d"
  "/root/repo/src/branch/ras.cpp" "src/CMakeFiles/bridge.dir/branch/ras.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/branch/ras.cpp.o.d"
  "/root/repo/src/branch/tage.cpp" "src/CMakeFiles/bridge.dir/branch/tage.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/branch/tage.cpp.o.d"
  "/root/repo/src/cache/bus.cpp" "src/CMakeFiles/bridge.dir/cache/bus.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/cache/bus.cpp.o.d"
  "/root/repo/src/cache/cache.cpp" "src/CMakeFiles/bridge.dir/cache/cache.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/cache/cache.cpp.o.d"
  "/root/repo/src/cache/hierarchy.cpp" "src/CMakeFiles/bridge.dir/cache/hierarchy.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/cache/hierarchy.cpp.o.d"
  "/root/repo/src/cache/llc.cpp" "src/CMakeFiles/bridge.dir/cache/llc.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/cache/llc.cpp.o.d"
  "/root/repo/src/cache/mshr.cpp" "src/CMakeFiles/bridge.dir/cache/mshr.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/cache/mshr.cpp.o.d"
  "/root/repo/src/cache/prefetcher.cpp" "src/CMakeFiles/bridge.dir/cache/prefetcher.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/cache/prefetcher.cpp.o.d"
  "/root/repo/src/cache/tlb.cpp" "src/CMakeFiles/bridge.dir/cache/tlb.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/cache/tlb.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/bridge.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/core/inorder.cpp" "src/CMakeFiles/bridge.dir/core/inorder.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/core/inorder.cpp.o.d"
  "/root/repo/src/core/ooo.cpp" "src/CMakeFiles/bridge.dir/core/ooo.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/core/ooo.cpp.o.d"
  "/root/repo/src/dram/controller.cpp" "src/CMakeFiles/bridge.dir/dram/controller.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/dram/controller.cpp.o.d"
  "/root/repo/src/dram/timings.cpp" "src/CMakeFiles/bridge.dir/dram/timings.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/dram/timings.cpp.o.d"
  "/root/repo/src/harness/calibration.cpp" "src/CMakeFiles/bridge.dir/harness/calibration.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/harness/calibration.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/bridge.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/figures.cpp" "src/CMakeFiles/bridge.dir/harness/figures.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/harness/figures.cpp.o.d"
  "/root/repo/src/harness/reference_data.cpp" "src/CMakeFiles/bridge.dir/harness/reference_data.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/harness/reference_data.cpp.o.d"
  "/root/repo/src/mpi/collectives.cpp" "src/CMakeFiles/bridge.dir/mpi/collectives.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/mpi/collectives.cpp.o.d"
  "/root/repo/src/mpi/mpi.cpp" "src/CMakeFiles/bridge.dir/mpi/mpi.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/mpi/mpi.cpp.o.d"
  "/root/repo/src/platforms/platforms.cpp" "src/CMakeFiles/bridge.dir/platforms/platforms.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/platforms/platforms.cpp.o.d"
  "/root/repo/src/sim/calendar.cpp" "src/CMakeFiles/bridge.dir/sim/calendar.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/sim/calendar.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/CMakeFiles/bridge.dir/sim/config.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/sim/config.cpp.o.d"
  "/root/repo/src/sim/log.cpp" "src/CMakeFiles/bridge.dir/sim/log.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/sim/log.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/bridge.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/bridge.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/sim/stats.cpp.o.d"
  "/root/repo/src/soc/soc.cpp" "src/CMakeFiles/bridge.dir/soc/soc.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/soc/soc.cpp.o.d"
  "/root/repo/src/sweep/fingerprint.cpp" "src/CMakeFiles/bridge.dir/sweep/fingerprint.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/sweep/fingerprint.cpp.o.d"
  "/root/repo/src/sweep/job.cpp" "src/CMakeFiles/bridge.dir/sweep/job.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/sweep/job.cpp.o.d"
  "/root/repo/src/sweep/result_cache.cpp" "src/CMakeFiles/bridge.dir/sweep/result_cache.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/sweep/result_cache.cpp.o.d"
  "/root/repo/src/sweep/sweep.cpp" "src/CMakeFiles/bridge.dir/sweep/sweep.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/sweep/sweep.cpp.o.d"
  "/root/repo/src/sweep/thread_pool.cpp" "src/CMakeFiles/bridge.dir/sweep/thread_pool.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/sweep/thread_pool.cpp.o.d"
  "/root/repo/src/trace/address_gen.cpp" "src/CMakeFiles/bridge.dir/trace/address_gen.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/trace/address_gen.cpp.o.d"
  "/root/repo/src/trace/kernel.cpp" "src/CMakeFiles/bridge.dir/trace/kernel.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/trace/kernel.cpp.o.d"
  "/root/repo/src/uop/uop.cpp" "src/CMakeFiles/bridge.dir/uop/uop.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/uop/uop.cpp.o.d"
  "/root/repo/src/workloads/lammps.cpp" "src/CMakeFiles/bridge.dir/workloads/lammps.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/workloads/lammps.cpp.o.d"
  "/root/repo/src/workloads/microbench.cpp" "src/CMakeFiles/bridge.dir/workloads/microbench.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/workloads/microbench.cpp.o.d"
  "/root/repo/src/workloads/microbench_catalog.cpp" "src/CMakeFiles/bridge.dir/workloads/microbench_catalog.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/workloads/microbench_catalog.cpp.o.d"
  "/root/repo/src/workloads/npb.cpp" "src/CMakeFiles/bridge.dir/workloads/npb.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/workloads/npb.cpp.o.d"
  "/root/repo/src/workloads/ume.cpp" "src/CMakeFiles/bridge.dir/workloads/ume.cpp.o" "gcc" "src/CMakeFiles/bridge.dir/workloads/ume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
