file(REMOVE_RECURSE
  "libbridge.a"
)
