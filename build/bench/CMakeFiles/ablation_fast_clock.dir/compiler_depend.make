# Empty compiler generated dependencies file for ablation_fast_clock.
# This may be replaced when dependencies are built.
