file(REMOVE_RECURSE
  "CMakeFiles/ablation_fast_clock.dir/ablation_fast_clock.cpp.o"
  "CMakeFiles/ablation_fast_clock.dir/ablation_fast_clock.cpp.o.d"
  "ablation_fast_clock"
  "ablation_fast_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fast_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
