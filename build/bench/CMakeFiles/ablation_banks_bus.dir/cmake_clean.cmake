file(REMOVE_RECURSE
  "CMakeFiles/ablation_banks_bus.dir/ablation_banks_bus.cpp.o"
  "CMakeFiles/ablation_banks_bus.dir/ablation_banks_bus.cpp.o.d"
  "ablation_banks_bus"
  "ablation_banks_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_banks_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
