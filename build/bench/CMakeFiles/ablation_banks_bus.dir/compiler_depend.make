# Empty compiler generated dependencies file for ablation_banks_bus.
# This may be replaced when dependencies are built.
