# Empty compiler generated dependencies file for fig7_lammps_chain.
# This may be replaced when dependencies are built.
