file(REMOVE_RECURSE
  "CMakeFiles/fig7_lammps_chain.dir/fig7_lammps_chain.cpp.o"
  "CMakeFiles/fig7_lammps_chain.dir/fig7_lammps_chain.cpp.o.d"
  "fig7_lammps_chain"
  "fig7_lammps_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_lammps_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
