file(REMOVE_RECURSE
  "CMakeFiles/calibration_report.dir/calibration_report.cpp.o"
  "CMakeFiles/calibration_report.dir/calibration_report.cpp.o.d"
  "calibration_report"
  "calibration_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
