file(REMOVE_RECURSE
  "CMakeFiles/table5_platform_specs.dir/table5_platform_specs.cpp.o"
  "CMakeFiles/table5_platform_specs.dir/table5_platform_specs.cpp.o.d"
  "table5_platform_specs"
  "table5_platform_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_platform_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
