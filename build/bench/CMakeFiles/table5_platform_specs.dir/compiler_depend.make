# Empty compiler generated dependencies file for table5_platform_specs.
# This may be replaced when dependencies are built.
