# Empty dependencies file for ablation_future_tuning.
# This may be replaced when dependencies are built.
