file(REMOVE_RECURSE
  "CMakeFiles/ablation_future_tuning.dir/ablation_future_tuning.cpp.o"
  "CMakeFiles/ablation_future_tuning.dir/ablation_future_tuning.cpp.o.d"
  "ablation_future_tuning"
  "ablation_future_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_future_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
