file(REMOVE_RECURSE
  "CMakeFiles/fig2_microbench_milkv.dir/fig2_microbench_milkv.cpp.o"
  "CMakeFiles/fig2_microbench_milkv.dir/fig2_microbench_milkv.cpp.o.d"
  "fig2_microbench_milkv"
  "fig2_microbench_milkv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_microbench_milkv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
