# Empty dependencies file for fig2_microbench_milkv.
# This may be replaced when dependencies are built.
