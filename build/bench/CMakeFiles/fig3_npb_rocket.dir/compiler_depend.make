# Empty compiler generated dependencies file for fig3_npb_rocket.
# This may be replaced when dependencies are built.
