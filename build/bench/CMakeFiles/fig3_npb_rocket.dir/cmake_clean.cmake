file(REMOVE_RECURSE
  "CMakeFiles/fig3_npb_rocket.dir/fig3_npb_rocket.cpp.o"
  "CMakeFiles/fig3_npb_rocket.dir/fig3_npb_rocket.cpp.o.d"
  "fig3_npb_rocket"
  "fig3_npb_rocket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_npb_rocket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
