# Empty compiler generated dependencies file for ablation_l1_cg.
# This may be replaced when dependencies are built.
