file(REMOVE_RECURSE
  "CMakeFiles/ablation_l1_cg.dir/ablation_l1_cg.cpp.o"
  "CMakeFiles/ablation_l1_cg.dir/ablation_l1_cg.cpp.o.d"
  "ablation_l1_cg"
  "ablation_l1_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_l1_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
