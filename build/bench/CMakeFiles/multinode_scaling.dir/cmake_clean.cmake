file(REMOVE_RECURSE
  "CMakeFiles/multinode_scaling.dir/multinode_scaling.cpp.o"
  "CMakeFiles/multinode_scaling.dir/multinode_scaling.cpp.o.d"
  "multinode_scaling"
  "multinode_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multinode_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
