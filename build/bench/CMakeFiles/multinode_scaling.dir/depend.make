# Empty dependencies file for multinode_scaling.
# This may be replaced when dependencies are built.
