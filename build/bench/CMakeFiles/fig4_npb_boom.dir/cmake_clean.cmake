file(REMOVE_RECURSE
  "CMakeFiles/fig4_npb_boom.dir/fig4_npb_boom.cpp.o"
  "CMakeFiles/fig4_npb_boom.dir/fig4_npb_boom.cpp.o.d"
  "fig4_npb_boom"
  "fig4_npb_boom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_npb_boom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
