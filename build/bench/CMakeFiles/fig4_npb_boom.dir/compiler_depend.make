# Empty compiler generated dependencies file for fig4_npb_boom.
# This may be replaced when dependencies are built.
