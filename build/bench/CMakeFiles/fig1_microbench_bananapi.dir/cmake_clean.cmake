file(REMOVE_RECURSE
  "CMakeFiles/fig1_microbench_bananapi.dir/fig1_microbench_bananapi.cpp.o"
  "CMakeFiles/fig1_microbench_bananapi.dir/fig1_microbench_bananapi.cpp.o.d"
  "fig1_microbench_bananapi"
  "fig1_microbench_bananapi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_microbench_bananapi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
