# Empty dependencies file for fig1_microbench_bananapi.
# This may be replaced when dependencies are built.
