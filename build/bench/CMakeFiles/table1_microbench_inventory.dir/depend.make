# Empty dependencies file for table1_microbench_inventory.
# This may be replaced when dependencies are built.
