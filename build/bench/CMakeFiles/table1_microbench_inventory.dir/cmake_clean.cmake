file(REMOVE_RECURSE
  "CMakeFiles/table1_microbench_inventory.dir/table1_microbench_inventory.cpp.o"
  "CMakeFiles/table1_microbench_inventory.dir/table1_microbench_inventory.cpp.o.d"
  "table1_microbench_inventory"
  "table1_microbench_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_microbench_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
