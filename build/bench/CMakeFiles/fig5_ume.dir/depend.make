# Empty dependencies file for fig5_ume.
# This may be replaced when dependencies are built.
