file(REMOVE_RECURSE
  "CMakeFiles/fig5_ume.dir/fig5_ume.cpp.o"
  "CMakeFiles/fig5_ume.dir/fig5_ume.cpp.o.d"
  "fig5_ume"
  "fig5_ume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
