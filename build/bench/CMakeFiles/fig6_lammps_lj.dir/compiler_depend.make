# Empty compiler generated dependencies file for fig6_lammps_lj.
# This may be replaced when dependencies are built.
