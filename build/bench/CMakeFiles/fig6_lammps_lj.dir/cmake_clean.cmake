file(REMOVE_RECURSE
  "CMakeFiles/fig6_lammps_lj.dir/fig6_lammps_lj.cpp.o"
  "CMakeFiles/fig6_lammps_lj.dir/fig6_lammps_lj.cpp.o.d"
  "fig6_lammps_lj"
  "fig6_lammps_lj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lammps_lj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
