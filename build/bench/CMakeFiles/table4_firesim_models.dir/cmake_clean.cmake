file(REMOVE_RECURSE
  "CMakeFiles/table4_firesim_models.dir/table4_firesim_models.cpp.o"
  "CMakeFiles/table4_firesim_models.dir/table4_firesim_models.cpp.o.d"
  "table4_firesim_models"
  "table4_firesim_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_firesim_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
