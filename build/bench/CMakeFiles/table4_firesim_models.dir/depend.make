# Empty dependencies file for table4_firesim_models.
# This may be replaced when dependencies are built.
