file(REMOVE_RECURSE
  "CMakeFiles/perf_components.dir/perf_components.cpp.o"
  "CMakeFiles/perf_components.dir/perf_components.cpp.o.d"
  "perf_components"
  "perf_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
