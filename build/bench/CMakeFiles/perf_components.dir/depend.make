# Empty dependencies file for perf_components.
# This may be replaced when dependencies are built.
