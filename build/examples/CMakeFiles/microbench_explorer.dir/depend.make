# Empty dependencies file for microbench_explorer.
# This may be replaced when dependencies are built.
