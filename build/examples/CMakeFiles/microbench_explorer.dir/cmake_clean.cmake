file(REMOVE_RECURSE
  "CMakeFiles/microbench_explorer.dir/microbench_explorer.cpp.o"
  "CMakeFiles/microbench_explorer.dir/microbench_explorer.cpp.o.d"
  "microbench_explorer"
  "microbench_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
