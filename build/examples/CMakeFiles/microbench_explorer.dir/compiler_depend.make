# Empty compiler generated dependencies file for microbench_explorer.
# This may be replaced when dependencies are built.
