file(REMOVE_RECURSE
  "CMakeFiles/mpi_scaling.dir/mpi_scaling.cpp.o"
  "CMakeFiles/mpi_scaling.dir/mpi_scaling.cpp.o.d"
  "mpi_scaling"
  "mpi_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
