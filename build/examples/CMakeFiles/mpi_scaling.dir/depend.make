# Empty dependencies file for mpi_scaling.
# This may be replaced when dependencies are built.
