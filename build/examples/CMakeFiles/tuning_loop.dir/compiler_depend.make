# Empty compiler generated dependencies file for tuning_loop.
# This may be replaced when dependencies are built.
