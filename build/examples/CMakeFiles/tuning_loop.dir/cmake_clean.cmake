file(REMOVE_RECURSE
  "CMakeFiles/tuning_loop.dir/tuning_loop.cpp.o"
  "CMakeFiles/tuning_loop.dir/tuning_loop.cpp.o.d"
  "tuning_loop"
  "tuning_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
